// The flexrpc type system.
//
// Types are interned in a TypeTable owned by the compilation unit; all
// consumers (presentation layer, signature builder, marshal-program builder,
// code generators) hold `const Type*` pointers into that table. Interning
// makes structural equality a pointer comparison for primitives and keeps
// recursive type graphs cheap to walk.

#ifndef FLEXRPC_SRC_IDL_TYPES_H_
#define FLEXRPC_SRC_IDL_TYPES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace flexrpc {

enum class TypeKind {
  kVoid,
  kBool,
  kOctet,  // uninterpreted byte
  kChar,
  kI16,
  kU16,
  kI32,
  kU32,
  kI64,
  kU64,
  kF32,
  kF64,
  kString,    // bound_ = max length, 0 = unbounded
  kSequence,  // element_ = element type, bound_ = max count, 0 = unbounded
  kArray,     // element_ = element type, bound_ = fixed count
  kStruct,
  kEnum,
  kUnion,
  kObjRef,  // interface (object/port) reference
  kAlias,   // typedef; element_ = aliased type
};

// True for types whose wire size is a compile-time constant.
bool IsFixedSizeKind(TypeKind kind);
// True for numeric/bool/char/octet scalars.
bool IsScalarKind(TypeKind kind);

std::string_view TypeKindName(TypeKind kind);

class Type;

struct StructField {
  std::string name;
  const Type* type = nullptr;
};

struct EnumMember {
  std::string name;
  uint32_t value = 0;
};

struct UnionArm {
  uint32_t label = 0;  // discriminant value (ignored if is_default)
  bool is_default = false;
  std::string name;
  const Type* type = nullptr;
};

// An immutable node in the type graph. Construct only through TypeTable.
class Type {
 public:
  TypeKind kind() const { return kind_; }
  // Declared name for named types; empty for anonymous constructed types.
  const std::string& name() const { return name_; }
  const Type* element() const { return element_; }
  uint32_t bound() const { return bound_; }
  const std::vector<StructField>& fields() const { return fields_; }
  const std::vector<EnumMember>& members() const { return members_; }
  const std::vector<UnionArm>& arms() const { return arms_; }
  const Type* discriminant() const { return discriminant_; }
  // Declarator name of the union discriminant ("status" in Sun RPC's
  // `union r switch (nfsstat status)`); empty when the IDL gives none.
  const std::string& discriminant_name() const { return discriminant_name_; }

  // Follows typedef chains to the underlying type.
  const Type* Resolve() const {
    const Type* t = this;
    while (t->kind_ == TypeKind::kAlias) {
      t = t->element_;
    }
    return t;
  }

  // Human-readable spelling, e.g. "sequence<octet>", "struct fattr".
  std::string ToString() const;

  // Size in bytes of the native in-memory representation (the presentation-
  // level layout used by the runtime stub engine). Variable-size types
  // (string, unbounded sequence) report the size of their descriptor.
  // Results are memoized on first use: a type's structure is frozen once
  // marshal programs start consuming it.
  size_t NativeSize() const;
  size_t NativeAlign() const;

  // Byte offset of field `index` in the native layout (structs only).
  // Memoized alongside NativeSize.
  size_t FieldOffset(size_t index) const;

 private:
  friend class TypeTable;
  Type() = default;

  TypeKind kind_ = TypeKind::kVoid;
  std::string name_;
  const Type* element_ = nullptr;
  uint32_t bound_ = 0;
  std::vector<StructField> fields_;
  std::vector<EnumMember> members_;
  std::vector<UnionArm> arms_;
  const Type* discriminant_ = nullptr;
  std::string discriminant_name_;

  // Lazily-computed layout caches (see NativeSize).
  mutable size_t cached_size_ = kLayoutUncached;
  mutable size_t cached_align_ = kLayoutUncached;
  mutable std::vector<size_t> cached_field_offsets_;
  static constexpr size_t kLayoutUncached = static_cast<size_t>(-1);

  size_t ComputeNativeSize() const;
  size_t ComputeNativeAlign() const;
};

// Owns all Type nodes for one compilation. Primitive types are singletons;
// constructed types are created on demand (sequences/arrays interned by
// (element, bound); named types registered once by name).
class TypeTable {
 public:
  TypeTable();

  TypeTable(const TypeTable&) = delete;
  TypeTable& operator=(const TypeTable&) = delete;

  const Type* Void() const { return void_; }
  const Type* Bool() const { return bool_; }
  const Type* Octet() const { return octet_; }
  const Type* Char() const { return char_; }
  const Type* I16() const { return i16_; }
  const Type* U16() const { return u16_; }
  const Type* I32() const { return i32_; }
  const Type* U32() const { return u32_; }
  const Type* I64() const { return i64_; }
  const Type* U64() const { return u64_; }
  const Type* F32() const { return f32_; }
  const Type* F64() const { return f64_; }

  const Type* String(uint32_t bound = 0);
  const Type* Sequence(const Type* element, uint32_t bound = 0);
  const Type* Array(const Type* element, uint32_t count);

  // Named-type registration. Returns nullptr if the name is already taken.
  Type* NewStruct(std::string name);
  Type* NewEnum(std::string name);
  Type* NewUnion(std::string name, const Type* discriminant,
                 std::string discriminant_name = "");
  const Type* NewObjRef(std::string name);
  const Type* NewAlias(std::string name, const Type* target);

  // Mutators used by the parsers while a named type is under construction.
  void AddField(Type* struct_type, std::string name, const Type* type);
  void AddEnumMember(Type* enum_type, std::string name, uint32_t value);
  void AddUnionArm(Type* union_type, uint32_t label, bool is_default,
                   std::string name, const Type* type);

  // Looks up a named type (struct/enum/union/objref/alias). Null if absent.
  const Type* FindNamed(std::string_view name) const;

  // All named types in declaration order (for code generation).
  std::vector<const Type*> NamedTypes() const;

  size_t size() const { return all_.size(); }

 private:
  Type* MakeType(TypeKind kind);
  const Type* MakePrimitive(TypeKind kind);
  Type* RegisterNamed(TypeKind kind, std::string name);

  std::vector<std::unique_ptr<Type>> all_;
  std::unordered_map<std::string, const Type*> named_;
  // Interning keys: "seq:<ptr>:<bound>", "arr:<ptr>:<count>", "str:<bound>".
  std::unordered_map<std::string, const Type*> constructed_;

  const Type* void_;
  const Type* bool_;
  const Type* octet_;
  const Type* char_;
  const Type* i16_;
  const Type* u16_;
  const Type* i32_;
  const Type* u32_;
  const Type* i64_;
  const Type* u64_;
  const Type* f32_;
  const Type* f64_;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_IDL_TYPES_H_
