#include "src/idl/sunrpc_parser.h"

#include <unordered_map>

#include "src/idl/lexer.h"
#include "src/support/strings.h"

namespace flexrpc {

namespace {

class SunRpcParser {
 public:
  SunRpcParser(std::string_view source, std::string filename,
               DiagnosticSink* diags)
      : file_(std::make_unique<InterfaceFile>()),
        cursor_(Tokenize(source, filename, diags), filename, diags) {
    file_->filename = std::move(filename);
  }

  std::unique_ptr<InterfaceFile> Run() {
    while (!cursor_.AtEnd()) {
      ParseDefinition();
    }
    if (cursor_.diags()->HasErrors()) {
      return nullptr;
    }
    return std::move(file_);
  }

 private:
  TypeTable& types() { return file_->types; }

  void ParseDefinition() {
    const Token& tok = cursor_.Peek();
    if (tok.IsIdent("program")) {
      ParseProgram();
    } else if (tok.IsIdent("struct")) {
      ParseStruct();
    } else if (tok.IsIdent("enum")) {
      ParseEnum();
    } else if (tok.IsIdent("union")) {
      ParseUnion();
    } else if (tok.IsIdent("typedef")) {
      ParseTypedef();
    } else if (tok.IsIdent("const")) {
      ParseConst();
    } else {
      cursor_.Error(StrFormat("expected a definition, found '%s'",
                              std::string(tok.text).c_str()));
      cursor_.SkipPast(TokenKind::kSemicolon);
    }
  }

  void ParseProgram() {
    cursor_.Next();  // 'program'
    std::string program_name =
        cursor_.ExpectIdentifier("after 'program'");
    cursor_.Expect(TokenKind::kLBrace, "to open program body");
    std::vector<InterfaceDecl> versions;
    while (cursor_.Peek().IsIdent("version")) {
      versions.push_back(ParseVersion());
    }
    cursor_.Expect(TokenKind::kRBrace, "to close program body");
    cursor_.Expect(TokenKind::kEquals, "before program number");
    uint64_t program_number = ParseConstExpr();
    cursor_.Expect(TokenKind::kSemicolon, "after program");
    for (InterfaceDecl& version : versions) {
      version.program_number = static_cast<uint32_t>(program_number);
      file_->interfaces.push_back(std::move(version));
    }
  }

  InterfaceDecl ParseVersion() {
    InterfaceDecl itf;
    itf.pos = cursor_.Peek().pos;
    cursor_.Next();  // 'version'
    itf.name = cursor_.ExpectIdentifier("after 'version'");
    if (types().FindNamed(itf.name) == nullptr) {
      types().NewObjRef(itf.name);
    }
    cursor_.Expect(TokenKind::kLBrace, "to open version body");
    while (!cursor_.AtEnd() && !cursor_.Peek().Is(TokenKind::kRBrace)) {
      ParseProcedure(&itf);
    }
    cursor_.Expect(TokenKind::kRBrace, "to close version body");
    cursor_.Expect(TokenKind::kEquals, "before version number");
    itf.version_number = static_cast<uint32_t>(ParseConstExpr());
    cursor_.Expect(TokenKind::kSemicolon, "after version");
    return itf;
  }

  void ParseProcedure(InterfaceDecl* itf) {
    OperationDecl op;
    op.pos = cursor_.Peek().pos;
    op.result = ParseTypeSpec();
    if (op.result == nullptr) {
      cursor_.SkipPast(TokenKind::kSemicolon);
      return;
    }
    op.name = cursor_.ExpectIdentifier("as procedure name");
    cursor_.Expect(TokenKind::kLParen, "to open argument list");
    // rpcgen takes a single argument type (or void).
    if (!cursor_.Peek().Is(TokenKind::kRParen)) {
      int arg_index = 1;
      do {
        const Type* arg_type = ParseTypeSpec();
        if (arg_type != nullptr &&
            arg_type->Resolve()->kind() != TypeKind::kVoid) {
          ParamDecl param;
          param.dir = ParamDir::kIn;
          param.name = StrFormat("arg%d", arg_index++);
          param.type = arg_type;
          param.pos = op.pos;
          op.params.push_back(std::move(param));
        }
      } while (cursor_.TryConsume(TokenKind::kComma));
    }
    cursor_.Expect(TokenKind::kRParen, "to close argument list");
    cursor_.Expect(TokenKind::kEquals, "before procedure number");
    op.opnum = static_cast<uint32_t>(ParseConstExpr());
    cursor_.Expect(TokenKind::kSemicolon, "after procedure");
    itf->ops.push_back(std::move(op));
  }

  void ParseStruct() {
    SourcePos pos = cursor_.Peek().pos;
    cursor_.Next();  // 'struct'
    std::string name = cursor_.ExpectIdentifier("after 'struct'");
    Type* s = types().NewStruct(name);
    if (s == nullptr) {
      cursor_.ErrorAt(pos,
                      StrFormat("redefinition of type '%s'", name.c_str()));
    }
    cursor_.Expect(TokenKind::kLBrace, "to open struct body");
    while (!cursor_.AtEnd() && !cursor_.Peek().Is(TokenKind::kRBrace)) {
      auto [field_type, field_name] = ParseDeclaration();
      cursor_.Expect(TokenKind::kSemicolon, "after struct field");
      if (s != nullptr && field_type != nullptr) {
        types().AddField(s, std::move(field_name), field_type);
      }
    }
    cursor_.Expect(TokenKind::kRBrace, "to close struct body");
    cursor_.Expect(TokenKind::kSemicolon, "after struct");
  }

  void ParseEnum() {
    SourcePos pos = cursor_.Peek().pos;
    cursor_.Next();  // 'enum'
    std::string name = cursor_.ExpectIdentifier("after 'enum'");
    Type* e = types().NewEnum(name);
    if (e == nullptr) {
      cursor_.ErrorAt(pos,
                      StrFormat("redefinition of type '%s'", name.c_str()));
    }
    cursor_.Expect(TokenKind::kLBrace, "to open enum body");
    uint32_t next_value = 0;
    do {
      std::string member = cursor_.ExpectIdentifier("as enum member");
      uint32_t value = next_value;
      if (cursor_.TryConsume(TokenKind::kEquals)) {
        value = static_cast<uint32_t>(ParseConstExpr());
      }
      next_value = value + 1;
      if (e != nullptr) {
        types().AddEnumMember(e, member, value);
        const_values_[member] = value;
      }
    } while (cursor_.TryConsume(TokenKind::kComma));
    cursor_.Expect(TokenKind::kRBrace, "to close enum body");
    cursor_.Expect(TokenKind::kSemicolon, "after enum");
  }

  void ParseUnion() {
    SourcePos pos = cursor_.Peek().pos;
    cursor_.Next();  // 'union'
    std::string name = cursor_.ExpectIdentifier("after 'union'");
    cursor_.TryConsumeIdent("switch");
    cursor_.Expect(TokenKind::kLParen, "after 'switch'");
    const Type* disc = ParseTypeSpec();
    // The discriminant declarator name is kept: flattened presentations
    // (paper Fig. 1) refer to it by name.
    std::string disc_name;
    if (cursor_.Peek().Is(TokenKind::kIdentifier)) {
      disc_name = std::string(cursor_.Next().text);
    }
    cursor_.Expect(TokenKind::kRParen, "after union discriminant");
    Type* u = types().NewUnion(name, disc, disc_name);
    if (u == nullptr) {
      cursor_.ErrorAt(pos,
                      StrFormat("redefinition of type '%s'", name.c_str()));
    }
    cursor_.Expect(TokenKind::kLBrace, "to open union body");
    while (!cursor_.AtEnd() && !cursor_.Peek().Is(TokenKind::kRBrace)) {
      bool is_default = false;
      uint32_t label = 0;
      if (cursor_.TryConsumeIdent("default")) {
        is_default = true;
        cursor_.Expect(TokenKind::kColon, "after 'default'");
      } else if (cursor_.TryConsumeIdent("case")) {
        label = static_cast<uint32_t>(ParseConstExpr());
        cursor_.Expect(TokenKind::kColon, "after case label");
      } else {
        cursor_.Error("expected 'case' or 'default' in union body");
        cursor_.SkipPast(TokenKind::kSemicolon);
        continue;
      }
      if (cursor_.TryConsumeIdent("void")) {
        cursor_.Expect(TokenKind::kSemicolon, "after void arm");
        if (u != nullptr) {
          types().AddUnionArm(u, label, is_default, "", types().Void());
        }
        continue;
      }
      auto [arm_type, arm_name] = ParseDeclaration();
      cursor_.Expect(TokenKind::kSemicolon, "after union arm");
      if (u != nullptr && arm_type != nullptr) {
        types().AddUnionArm(u, label, is_default, std::move(arm_name),
                            arm_type);
      }
    }
    cursor_.Expect(TokenKind::kRBrace, "to close union body");
    cursor_.Expect(TokenKind::kSemicolon, "after union");
  }

  void ParseTypedef() {
    cursor_.Next();  // 'typedef'
    auto [type, name] = ParseDeclaration();
    cursor_.Expect(TokenKind::kSemicolon, "after typedef");
    if (type != nullptr && !name.empty()) {
      if (types().NewAlias(name, type) == nullptr) {
        cursor_.Error(StrFormat("redefinition of type '%s'", name.c_str()));
      }
    }
  }

  void ParseConst() {
    cursor_.Next();  // 'const'
    ConstDecl decl;
    decl.pos = cursor_.Peek().pos;
    decl.name = cursor_.ExpectIdentifier("as constant name");
    decl.type = types().U32();
    cursor_.Expect(TokenKind::kEquals, "in constant definition");
    decl.value = ParseConstExpr();
    cursor_.Expect(TokenKind::kSemicolon, "after constant");
    const_values_[decl.name] = decl.value;
    file_->constants.push_back(std::move(decl));
  }

  // Parses "type-specifier declarator" where the declarator may carry the
  // RPC-language suffixes `<bound>` (variable length) and `[count]` (fixed).
  // `opaque` and `string` are only legal with a declarator suffix.
  std::pair<const Type*, std::string> ParseDeclaration() {
    const Token& tok = cursor_.Peek();
    bool is_opaque = tok.IsIdent("opaque");
    bool is_string = tok.IsIdent("string");
    const Type* base = nullptr;
    if (is_opaque || is_string) {
      cursor_.Next();
    } else {
      base = ParseTypeSpec();
      if (base == nullptr) {
        return {nullptr, ""};
      }
    }
    if (cursor_.TryConsume(TokenKind::kStar)) {
      cursor_.Error(
          "XDR optional-data ('*') declarators are not supported; use a "
          "variable-length array instead");
    }
    std::string name = cursor_.ExpectIdentifier("as declarator");
    if (cursor_.TryConsume(TokenKind::kLAngle)) {
      uint32_t bound = 0;
      if (!cursor_.Peek().Is(TokenKind::kRAngle)) {
        bound = static_cast<uint32_t>(ParseConstExpr());
      }
      cursor_.Expect(TokenKind::kRAngle, "to close bound");
      if (is_string) {
        return {types().String(bound), std::move(name)};
      }
      const Type* elem = is_opaque ? types().Octet() : base;
      return {types().Sequence(elem, bound), std::move(name)};
    }
    if (cursor_.TryConsume(TokenKind::kLBracket)) {
      uint32_t count = static_cast<uint32_t>(ParseConstExpr());
      cursor_.Expect(TokenKind::kRBracket, "to close array dimension");
      const Type* elem = is_opaque ? types().Octet() : base;
      return {types().Array(elem, count), std::move(name)};
    }
    if (is_opaque || is_string) {
      cursor_.Error("'opaque' and 'string' declarators need <> or []");
      return {nullptr, std::move(name)};
    }
    return {base, std::move(name)};
  }

  uint64_t ParseConstExpr() {
    const Token& tok = cursor_.Peek();
    if (tok.Is(TokenKind::kIntLiteral)) {
      return cursor_.Next().int_value;
    }
    if (tok.Is(TokenKind::kIdentifier)) {
      std::string name(cursor_.Next().text);
      auto it = const_values_.find(name);
      if (it != const_values_.end()) {
        return it->second;
      }
      cursor_.Error(StrFormat("unknown constant '%s'", name.c_str()));
      return 0;
    }
    cursor_.Error("expected constant expression");
    cursor_.Next();
    return 0;
  }

  const Type* ParseTypeSpec() {
    const Token& tok = cursor_.Peek();
    if (!tok.Is(TokenKind::kIdentifier)) {
      cursor_.Error("expected a type");
      return nullptr;
    }
    if (tok.IsIdent("void")) {
      cursor_.Next();
      return types().Void();
    }
    if (tok.IsIdent("bool")) {
      cursor_.Next();
      return types().Bool();
    }
    if (tok.IsIdent("char")) {
      cursor_.Next();
      return types().Char();
    }
    if (tok.IsIdent("short")) {
      cursor_.Next();
      return types().I16();
    }
    if (tok.IsIdent("int") || tok.IsIdent("long")) {
      cursor_.Next();
      return types().I32();
    }
    if (tok.IsIdent("hyper")) {
      cursor_.Next();
      return types().I64();
    }
    if (tok.IsIdent("unsigned")) {
      cursor_.Next();
      if (cursor_.TryConsumeIdent("short")) {
        return types().U16();
      }
      if (cursor_.TryConsumeIdent("hyper")) {
        return types().U64();
      }
      // "unsigned", "unsigned int", "unsigned long" are all 32-bit.
      cursor_.TryConsumeIdent("int");
      cursor_.TryConsumeIdent("long");
      return types().U32();
    }
    if (tok.IsIdent("float")) {
      cursor_.Next();
      return types().F32();
    }
    if (tok.IsIdent("double")) {
      cursor_.Next();
      return types().F64();
    }
    if (tok.IsIdent("struct") || tok.IsIdent("enum") ||
        tok.IsIdent("union")) {
      // "struct foo" as a type reference.
      cursor_.Next();
      std::string name = cursor_.ExpectIdentifier("as type name");
      const Type* named = types().FindNamed(name);
      if (named == nullptr) {
        cursor_.Error(StrFormat("unknown type '%s'", name.c_str()));
      }
      return named;
    }
    std::string name(cursor_.Next().text);
    const Type* named = types().FindNamed(name);
    if (named == nullptr) {
      cursor_.Error(StrFormat("unknown type '%s'", name.c_str()));
      return nullptr;
    }
    return named;
  }

  std::unique_ptr<InterfaceFile> file_;
  TokenCursor cursor_;
  std::unordered_map<std::string, uint64_t> const_values_;
};

}  // namespace

std::unique_ptr<InterfaceFile> ParseSunRpc(std::string_view source,
                                           std::string filename,
                                           DiagnosticSink* diags) {
  return SunRpcParser(source, std::move(filename), diags).Run();
}

}  // namespace flexrpc
