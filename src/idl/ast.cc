#include "src/idl/ast.h"

namespace flexrpc {

std::string_view ParamDirName(ParamDir dir) {
  switch (dir) {
    case ParamDir::kIn:
      return "in";
    case ParamDir::kOut:
      return "out";
    case ParamDir::kInOut:
      return "inout";
  }
  return "?";
}

}  // namespace flexrpc
