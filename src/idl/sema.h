// Semantic checks over a parsed InterfaceFile, plus interface flattening.
//
// The parsers guarantee syntactic well-formedness; sema enforces the rules
// that span declarations: base interfaces must exist, inherited operations
// are folded into the derived interface (so later stages see a flat op list),
// operation names are unique per interface, parameter names are unique per
// operation, and recursive value types are rejected (object references may
// be recursive; by-value structs may not).

#ifndef FLEXRPC_SRC_IDL_SEMA_H_
#define FLEXRPC_SRC_IDL_SEMA_H_

#include "src/idl/ast.h"
#include "src/support/diag.h"
#include "src/support/status.h"

namespace flexrpc {

// Runs all checks and interface flattening in place. Returns false (with
// details in `diags`) if the file is rejected.
bool AnalyzeInterfaceFile(InterfaceFile* file, DiagnosticSink* diags);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_IDL_SEMA_H_
