// Abstract syntax for interface definitions, shared by all front-ends.
//
// Front-ends (CORBA IDL, Sun RPC language) populate an InterfaceFile; the
// presentation layer and back-ends consume it. The AST deliberately models
// only the *network contract*: how parameters appear to C++ callers is the
// presentation layer's concern (src/pdl/).

#ifndef FLEXRPC_SRC_IDL_AST_H_
#define FLEXRPC_SRC_IDL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/idl/types.h"
#include "src/support/diag.h"

namespace flexrpc {

enum class ParamDir { kIn, kOut, kInOut };

std::string_view ParamDirName(ParamDir dir);

struct ParamDecl {
  ParamDir dir = ParamDir::kIn;
  std::string name;
  const Type* type = nullptr;
  SourcePos pos;
};

struct OperationDecl {
  std::string name;
  const Type* result = nullptr;  // kVoid for no return value
  std::vector<ParamDecl> params;
  bool oneway = false;
  SourcePos pos;

  // Stable identifier assigned by sema: position within the interface.
  uint32_t opnum = 0;

  const ParamDecl* FindParam(std::string_view param_name) const {
    for (const ParamDecl& p : params) {
      if (p.name == param_name) {
        return &p;
      }
    }
    return nullptr;
  }
};

struct InterfaceDecl {
  std::string name;
  std::vector<std::string> bases;  // names of inherited interfaces
  std::vector<OperationDecl> ops;
  SourcePos pos;
  // Sun RPC origin information (program/version numbers), 0 for CORBA input.
  uint32_t program_number = 0;
  uint32_t version_number = 0;

  const OperationDecl* FindOp(std::string_view op_name) const {
    for (const OperationDecl& op : ops) {
      if (op.name == op_name) {
        return &op;
      }
    }
    return nullptr;
  }
};

struct ConstDecl {
  std::string name;
  const Type* type = nullptr;
  uint64_t value = 0;
  SourcePos pos;
};

// One parsed interface-definition file: the unit both the PDL stage and the
// back-ends operate on.
struct InterfaceFile {
  std::string filename;
  std::string module_name;  // optional enclosing module
  TypeTable types;
  std::vector<InterfaceDecl> interfaces;
  std::vector<ConstDecl> constants;

  const InterfaceDecl* FindInterface(std::string_view name) const {
    for (const InterfaceDecl& itf : interfaces) {
      if (itf.name == name) {
        return &itf;
      }
    }
    return nullptr;
  }

  InterfaceDecl* FindInterfaceMutable(std::string_view name) {
    for (InterfaceDecl& itf : interfaces) {
      if (itf.name == name) {
        return &itf;
      }
    }
    return nullptr;
  }
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_IDL_AST_H_
