#include "src/analysis/flexspec_profile.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/support/json.h"
#include "src/support/recorder.h"
#include "src/support/strings.h"

namespace flexrpc {

namespace {

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError(StrFormat("cannot open %s", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Result<uint64_t> ParseHash(const JsonValue& entry, const char* key) {
  const JsonValue* v = entry.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kString) {
    return InvalidArgumentError(
        StrFormat("marshal_profile entry lacks %s", key));
  }
  char* end = nullptr;
  uint64_t hash = std::strtoull(v->string.c_str(), &end, 16);
  if (end == nullptr || *end != '\0' || v->string.empty()) {
    return InvalidArgumentError(
        StrFormat("malformed %s value '%s'", key, v->string.c_str()));
  }
  return hash;
}

uint64_t UIntOf(const JsonValue& entry, const char* key) {
  const JsonValue* v = entry.Find(key);
  return v != nullptr && v->IsNumber() ? static_cast<uint64_t>(v->number)
                                       : 0;
}

ProfiledPlan* FindOrAdd(MarshalProfile* profile, const SpecKey& key,
                        const std::string& op_name) {
  for (ProfiledPlan& plan : profile->plans) {
    if (plan.key == key) {
      return &plan;
    }
  }
  ProfiledPlan plan;
  plan.key = key;
  plan.op_name = op_name;
  profile->plans.push_back(std::move(plan));
  return &profile->plans.back();
}

Status MergeBenchArtifact(const JsonValue& artifact,
                          MarshalProfile* profile) {
  const JsonValue* section = artifact.Find("marshal_profile");
  if (section == nullptr) {
    return Status::Ok();  // older artifact: no profile section yet
  }
  if (section->kind != JsonValue::Kind::kArray) {
    return InvalidArgumentError("marshal_profile is not an array");
  }
  for (const JsonValue& entry : section->array) {
    FLEXRPC_ASSIGN_OR_RETURN(uint64_t op_hash, ParseHash(entry, "op_hash"));
    FLEXRPC_ASSIGN_OR_RETURN(uint64_t pres_hash,
                             ParseHash(entry, "pres_hash"));
    const JsonValue* op = entry.Find("op");
    SpecKey key{op_hash, pres_hash};
    ProfiledPlan* plan = FindOrAdd(
        profile, key, op != nullptr ? op->string : std::string());
    plan->marshal_calls += UIntOf(entry, "marshal_calls");
    plan->unmarshal_calls += UIntOf(entry, "unmarshal_calls");
    plan->wire_bytes += UIntOf(entry, "wire_bytes");
  }
  return Status::Ok();
}

Status MergeRecording(std::string_view json_text, MarshalProfile* profile) {
  FLEXRPC_ASSIGN_OR_RETURN(Recording recording, ParseRecording(json_text));
  for (const RecordedEvent& event : recording.events) {
    if (event.type == RecEvent::kMarshalBegin) {
      ++profile->unattributed_recording_spans;
    }
  }
  return Status::Ok();
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

Status MergeProfileArtifact(std::string_view json_text,
                            MarshalProfile* profile) {
  FLEXRPC_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json_text));
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString) {
    return InvalidArgumentError("profile artifact has no schema");
  }
  Status status;
  if (schema->string == "flexrpc-bench-v1") {
    status = MergeBenchArtifact(root, profile);
  } else if (schema->string == "flexrpc-rec-v1") {
    status = MergeRecording(json_text, profile);
  } else {
    return InvalidArgumentError(StrFormat(
        "unrecognized profile artifact schema '%s'",
        schema->string.c_str()));
  }
  if (status.ok()) {
    ++profile->artifacts_read;
  }
  return status;
}

Status LoadProfilePath(const std::string& path, MarshalProfile* profile) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return NotFoundError(StrFormat("no such profile path %s",
                                   path.c_str()));
  }
  if (!S_ISDIR(st.st_mode)) {
    FLEXRPC_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
    Status status = MergeProfileArtifact(text, profile);
    if (!status.ok()) {
      return InvalidArgumentError(StrFormat(
          "%s: %s", path.c_str(), status.message().c_str()));
    }
    return Status::Ok();
  }
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    return NotFoundError(StrFormat("cannot open directory %s",
                                   path.c_str()));
  }
  // Deterministic order regardless of readdir's: collect, sort, merge.
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string_view name = entry->d_name;
    if ((StartsWith(name, "BENCH_") || StartsWith(name, "REC_")) &&
        EndsWith(name, ".json")) {
      names.emplace_back(name);
    }
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    std::string full = path + "/" + name;
    FLEXRPC_ASSIGN_OR_RETURN(std::string text, ReadFileToString(full));
    Status status = MergeProfileArtifact(text, profile);
    if (!status.ok()) {
      return InvalidArgumentError(StrFormat(
          "%s: %s", full.c_str(), status.message().c_str()));
    }
  }
  return Status::Ok();
}

void FinalizeProfile(MarshalProfile* profile) {
  std::sort(profile->plans.begin(), profile->plans.end(),
            [](const ProfiledPlan& a, const ProfiledPlan& b) {
              if (a.Score() != b.Score()) {
                return a.Score() > b.Score();
              }
              return a.key < b.key;
            });
}

std::vector<SpecKey> MarshalProfile::TopKeys(size_t k) const {
  std::vector<SpecKey> keys;
  for (const ProfiledPlan& plan : plans) {
    if (keys.size() >= k) {
      break;
    }
    if (plan.Score() == 0) {
      continue;
    }
    keys.push_back(plan.key);
  }
  return keys;
}

const ProfiledPlan* MarshalProfile::Find(const SpecKey& key) const {
  for (const ProfiledPlan& plan : plans) {
    if (plan.key == key) {
      return &plan;
    }
  }
  return nullptr;
}

}  // namespace flexrpc
