// flexcheck stage 3: the flexspec wire-equivalence prover.
//
// A flexspec superinstruction stream (src/marshal/spec.h) claims to be
// byte-for-byte what the interpreted MarshalProgram would put on (or take
// off) the wire. This pass *proves* the claim before any specialization is
// emitted: two independent abstract interpreters execute over a symbolic
// wire buffer —
//
//   * the plan side walks the MarshalPlanView + type graph exactly as the
//     engine's MarshalTop/UnmarshalTop recursion would, and
//   * the spec side mechanically expands the SpecProgram opcodes —
//
// each producing a canonical sequence of WireEffects: "write a 4-byte
// scalar from slot 2", "emit a length prefix governed by slot 5 with
// bound 8192", "read `count` bytes into slot memory at offset 12". Every
// effect is unambiguous about operand, length discipline, and destination
// policy, so equal effect sequences imply equal wire bytes and equal
// ArgVec/arena behavior for every input. Any divergence is a hard coded
// diagnostic (FLEX201–FLEX207) that blocks emission; `idlc --check`
// reports it. Constructs outside the specializable subset surface as a
// kOpaque effect on the plan side — a SpecProgram can never match one, so
// a compiler bug that emits code for an unsupported plan is caught by the
// same comparison.

#ifndef FLEXRPC_SRC_ANALYSIS_SPEC_VERIFIER_H_
#define FLEXRPC_SRC_ANALYSIS_SPEC_VERIFIER_H_

#include <string>
#include <vector>

#include "src/idl/ast.h"
#include "src/marshal/spec.h"
#include "src/pdl/presentation.h"
#include "src/support/diag.h"

namespace flexrpc {

// One symbolic effect on the wire or on call state. The canonical forms
// both abstract interpreters lower to; field meanings depend on `kind`.
struct WireEffect {
  enum class Kind : uint8_t {
    kScalar,     // one wire scalar moved between the wire and a slot
    kLenPrefix,  // u32 length prefix governed by `len_src` under `bound`
    kBytes,      // a byte run (fixed `count` or governed by the previous
                 //   length prefix), with its copy/destination policy
    kDisc,       // union discriminant; stream ends unless it == `label`
    kEnsure,     // unmarshal storage guarantee: slot gets `count` bytes
    kOpaque,     // plan construct outside the specializable subset
  };
  // Unmarshal destination policy for kScalar/kBytes (kNone on marshal).
  enum class Dest : uint8_t {
    kNone,        // marshal direction: wire is the destination
    kSlotScalar,  // args[slot].scalar
    kSlotMem,     // slot memory at `offset`
    kBuffer,      // sequence buffer: borrow/caller/arena policy
    kString,      // string buffer: caller/arena policy + NUL terminator
  };

  Kind kind = Kind::kOpaque;
  uint8_t width = 0;      // kScalar: wire width in bytes
  int slot = -1;          // operand slot
  uint32_t offset = 0;    // native byte offset for memory operands
  bool from_memory = false;  // operand loaded from slot memory, not .scalar
  SpecLenSource len_src = SpecLenSource::kSlotLength;  // kLenPrefix source
  int len_slot = -1;      // [length_is] slot for kLenSlot
  uint32_t bound = 0;     // declared bound (0 = unbounded)
  uint32_t count = 0;     // kBytes fixed runs / kEnsure size
  bool fixed = false;     // kBytes: count is compile-time constant
  bool special = false;   // byte run may route through SpecialOps
  Dest dest = Dest::kNone;
  bool nul_terminated = false;  // kBytes into kString storage
  bool may_borrow = false;      // kBytes may alias the message buffer
  uint32_t label = 0;           // kDisc success label

  bool operator==(const WireEffect&) const = default;

  // Compact rendering for diagnostics, e.g. "scalar(w4 slot2)".
  std::string ToString() const;
};

// The interpreted plan's effects for one stream, derived by symbolically
// executing MarshalProgram::Build(op, pres)'s item walk — independent of
// CompileSpecPlan, which is the point: the two lowerings meet only at the
// comparison.
std::vector<WireEffect> PlanStreamEffects(const OperationDecl& op,
                                          const OpPresentation& pres,
                                          SpecStream stream);

// A SpecProgram's effects, by mechanical opcode expansion.
std::vector<WireEffect> SpecStreamEffects(const SpecProgram& prog);

// Proves every stream `spec_plan` claims against the interpreted plan.
// Divergences are reported as FLEX201–FLEX207 errors attributed to
// `file`; returns the number of diagnostics emitted (0 = proven
// equivalent; emission may proceed).
int VerifySpecPlan(const OperationDecl& op, const OpPresentation& pres,
                   const SpecPlan& spec_plan, const std::string& file,
                   DiagnosticSink* diags);

// Reports a FLEX205 warning (with the compiler's reason) for each stream
// of `spec_plan` that stayed on the interpreter. Informational: used by
// `idlc --specialize` logs and tests, never blocks anything.
int ReportUnspecializedStreams(const SpecPlan& spec_plan,
                               const std::string& file,
                               DiagnosticSink* diags);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_ANALYSIS_SPEC_VERIFIER_H_
