#include "src/analysis/flexcheck.h"

#include <string>

#include "src/support/strings.h"

namespace flexrpc {

const std::vector<FlexCodeInfo>& FlexCodeCatalog() {
  static const std::vector<FlexCodeInfo> kCatalog = {
      // --- stage 1: presentation lint ---
      {"FLEX001", DiagSeverity::kError,
       "[trashable] in a server-side presentation"},
      {"FLEX002", DiagSeverity::kError,
       "[preserved] in a client-side presentation"},
      {"FLEX003", DiagSeverity::kError,
       "[length_is] targets a missing or non-integral slot"},
      {"FLEX004", DiagSeverity::kError,
       "[length_is] length travels in the wrong direction"},
      {"FLEX005", DiagSeverity::kError,
       "[dealloc(always)] would free caller-owned [alloc(user)] storage"},
      {"FLEX006", DiagSeverity::kError,
       "[special] on a non-buffer-like type"},
      {"FLEX007", DiagSeverity::kError,
       "[nonunique] on a non-object-reference type"},
      {"FLEX008", DiagSeverity::kError,
       "flatten bindings skip or double-cover a wire item"},
      {"FLEX009", DiagSeverity::kWarning,
       "trust(full) makes a buffer-sharing promise unenforceable"},
      {"FLEX010", DiagSeverity::kWarning,
       "presentation-only slot never referenced by a [length_is]"},
      {"FLEX011", DiagSeverity::kNote,
       "in-buffer neither [trashable] nor [preserved]: elidable copy"},
      {"FLEX012", DiagSeverity::kNote,
       "fixed-size out data forced through move semantics"},
      // --- stage 2: marshal-plan verifier ---
      {"FLEX101", DiagSeverity::kError,
       "wire-item stream deviates from IDL order"},
      {"FLEX102", DiagSeverity::kError, "slot index out of range"},
      {"FLEX103", DiagSeverity::kError,
       "[length_is] slot marshaled after the buffer referencing it"},
      {"FLEX104", DiagSeverity::kError,
       "result item not in the final slot"},
      {"FLEX105", DiagSeverity::kError,
       "one slot carries two wire items of a stream (double release)"},
      {"FLEX106", DiagSeverity::kError,
       "flattened item missing a field or discriminant slot"},
      // --- stage 3: flexspec equivalence prover ---
      {"FLEX201", DiagSeverity::kError,
       "specialized stream emits a different number of wire effects"},
      {"FLEX202", DiagSeverity::kError,
       "specialized wire effect has the wrong kind"},
      {"FLEX203", DiagSeverity::kError,
       "specialized wire effect reads or writes the wrong operand"},
      {"FLEX204", DiagSeverity::kError,
       "specialized wire effect violates the length/bound discipline"},
      {"FLEX205", DiagSeverity::kWarning,
       "stream outside the specializable subset (interpreter retained)"},
      {"FLEX206", DiagSeverity::kError,
       "specialized wire effect has the wrong destination/alloc policy"},
      {"FLEX207", DiagSeverity::kError,
       "specialized union discriminant structure diverges from the plan"},
  };
  return kCatalog;
}

const FlexCodeInfo* FindFlexCode(std::string_view code) {
  for (const FlexCodeInfo& info : FlexCodeCatalog()) {
    if (info.code == code) {
      return &info;
    }
  }
  return nullptr;
}

namespace {

// Shared by both stages: reports with the catalog's severity for `code`.
class Reporter {
 public:
  Reporter(std::string file, DiagnosticSink* diags)
      : file_(std::move(file)), diags_(diags) {}

  void Report(std::string_view code, SourcePos pos, std::string message) {
    const FlexCodeInfo* info = FindFlexCode(code);
    diags_->Report(info != nullptr ? info->severity : DiagSeverity::kError,
                   std::string(code), file_, pos, std::move(message));
    ++count_;
  }

  int count() const { return count_; }

 private:
  std::string file_;
  DiagnosticSink* diags_;
  int count_ = 0;
};

class PresentationLinter {
 public:
  PresentationLinter(const InterfaceFile& idl, const InterfaceDecl& itf,
                     const InterfacePresentation& pres,
                     DiagnosticSink* diags, const LintOptions& opts)
      : itf_(itf), pres_(pres), opts_(opts),
        reporter_(idl.filename, diags) {}

  int Run() {
    for (size_t oi = 0; oi < itf_.ops.size() && oi < pres_.ops.size();
         ++oi) {
      LintOp(itf_.ops[oi], pres_.ops[oi]);
    }
    return reporter_.count();
  }

 private:
  void Report(std::string_view code, SourcePos pos, std::string message) {
    reporter_.Report(code, pos, std::move(message));
  }

  // Position of the wire item behind `p`, defaulting to the op.
  SourcePos PosOf(const OperationDecl& op, const ParamPresentation& p) {
    if (p.binding.kind == BindingKind::kParam ||
        p.binding.kind == BindingKind::kParamField) {
      int pi = p.binding.param_index;
      if (pi >= 0 && pi < static_cast<int>(op.params.size())) {
        return op.params[static_cast<size_t>(pi)].pos;
      }
    }
    return op.pos;
  }

  void LintOp(const OperationDecl& op, const OpPresentation& pres) {
    for (const ParamPresentation& p : pres.params) {
      LintParam(op, pres, p);
    }
    LintParam(op, pres, pres.result);
    LintCoverage(op, pres);
    LintDeadSlots(op, pres);
  }

  void LintParam(const OperationDecl& op, const OpPresentation& pres,
                 const ParamPresentation& p) {
    const Type* type = BindingType(op, p.binding);
    SourcePos pos = PosOf(op, p);

    if (p.trashable && pres_.side == Side::kServer) {
      Report("FLEX001", pos,
             StrFormat("[trashable] on '%s' of '%s' is a client-side "
                       "waiver; a server presentation cannot discard the "
                       "caller's buffer contents",
                       p.name.c_str(), op.name.c_str()));
    }
    if (p.preserved && pres_.side == Side::kClient) {
      Report("FLEX002", pos,
             StrFormat("[preserved] on '%s' of '%s' is a server-side "
                       "promise; a client presentation cannot make it",
                       p.name.c_str(), op.name.c_str()));
    }
    if (pres_.trust == TrustLevel::kFull && (p.preserved || p.trashable)) {
      Report("FLEX009", pos,
             StrFormat("trust(full) on '%s' waives integrity protection, "
                       "so the [%s] buffer-sharing promise on '%s' is "
                       "unenforceable against the peer",
                       itf_.name.c_str(),
                       p.preserved ? "preserved" : "trashable",
                       p.name.c_str()));
    }
    if (p.explicit_length) {
      LintLengthIs(op, pres, p, pos);
    }
    if (p.special && type != nullptr && !IsBufferLike(type)) {
      Report("FLEX006", pos,
             StrFormat("[special] on '%s' of '%s' requires a buffer-like "
                       "type (got %s): user marshal routines move byte "
                       "runs, not scalars",
                       p.name.c_str(), op.name.c_str(),
                       type->ToString().c_str()));
    }
    if (p.nonunique && type != nullptr &&
        type->Resolve()->kind() != TypeKind::kObjRef) {
      Report("FLEX007", pos,
             StrFormat("[nonunique] on '%s' of '%s' requires an object "
                       "reference (got %s): only transferred port names "
                       "have uniqueness to waive",
                       p.name.c_str(), op.name.c_str(),
                       type->ToString().c_str()));
    }
    if (type != nullptr) {
      ParamDir dir = BindingDir(op, p.binding);
      if (pres_.side == Side::kClient && dir == ParamDir::kInOut &&
          p.alloc == AllocPolicy::kUser &&
          p.dealloc == DeallocPolicy::kAlways) {
        Report("FLEX005", pos,
               StrFormat("[dealloc(always)] on '%s' of '%s' frees the "
                         "caller-owned [alloc(user)] buffer after request "
                         "marshaling, then the reply unmarshals into freed "
                         "storage the caller frees again (double free)",
                         p.name.c_str(), op.name.c_str()));
      }
      if (opts_.advisors) {
        Advise(op, p, type, dir, pos);
      }
    }
  }

  void LintLengthIs(const OperationDecl& op, const OpPresentation& pres,
                    const ParamPresentation& p, SourcePos pos) {
    const ParamPresentation* len = pres.FindParam(p.length_param);
    if (len == nullptr) {
      Report("FLEX003", pos,
             StrFormat("[length_is(%s)] on '%s' of '%s' names no slot of "
                       "this stub",
                       p.length_param.c_str(), p.name.c_str(),
                       op.name.c_str()));
      return;
    }
    if (len->presentation_only) {
      return;  // caller-supplied length: always available, no direction
    }
    const Type* lt = BindingType(op, len->binding);
    if (lt != nullptr && !IsIntegralScalar(lt)) {
      Report("FLEX003", pos,
             StrFormat("[length_is(%s)] on '%s' of '%s' targets a "
                       "non-integral slot (%s)",
                       p.length_param.c_str(), p.name.c_str(),
                       op.name.c_str(), lt->ToString().c_str()));
    }
    ParamDir buf_dir = BindingDir(op, p.binding);
    ParamDir len_dir = BindingDir(op, len->binding);
    if (len_dir != buf_dir && len_dir != ParamDir::kInOut) {
      Report("FLEX004", pos,
             StrFormat("[length_is(%s)] on '%s' of '%s': the buffer is %s "
                       "but its length travels %s, so one direction has "
                       "no length to consult",
                       p.length_param.c_str(), p.name.c_str(),
                       op.name.c_str(),
                       std::string(ParamDirName(buf_dir)).c_str(),
                       std::string(ParamDirName(len_dir)).c_str()));
    }
  }

  // §4 advisor notes: copies/allocations the endpoint could annotate away.
  void Advise(const OperationDecl& op, const ParamPresentation& p,
              const Type* type, ParamDir dir, SourcePos pos) {
    if (dir == ParamDir::kIn && IsBufferLike(type) && !p.trashable &&
        !p.preserved && !p.special) {
      Report("FLEX011", pos,
             StrFormat("in-buffer '%s' of '%s' is neither [trashable] nor "
                       "[preserved]; the transport must copy it even when "
                       "the endpoint would not notice sharing (§4.1)",
                       p.name.c_str(), op.name.c_str()));
    }
    bool produces = dir != ParamDir::kIn;
    const Type* t = type->Resolve();
    bool has_storage =
        !IsScalarKind(t->kind()) && t->kind() != TypeKind::kVoid;
    if (produces && has_storage && !IsVariableWireSize(type) &&
        (p.dealloc == DeallocPolicy::kAlways ||
         (pres_.side == Side::kClient && p.alloc == AllocPolicy::kStub))) {
      Report("FLEX012", pos,
             StrFormat("fixed-size out data '%s' of '%s' is forced "
                       "through move semantics; caller storage would "
                       "avoid a per-call allocation (§4.4.2)",
                       p.name.c_str(), op.name.c_str()));
    }
  }

  // Every wire item must be carried exactly once, down to flattened-field
  // granularity (ApplyPdl's own validator only counts whole parameters).
  void LintCoverage(const OperationDecl& op, const OpPresentation& pres) {
    const int flatten_arg = FlattenableArgIndex(op);
    const Type* result_struct = FlattenableResultStruct(op);
    const Type* result_resolved = op.result->Resolve();
    const bool result_union = result_resolved->kind() == TypeKind::kUnion;

    std::vector<int> param_cover(op.params.size(), 0);
    std::vector<int> arg_field_cover(
        flatten_arg >= 0
            ? op.params[static_cast<size_t>(flatten_arg)]
                  .type->Resolve()->fields().size()
            : 0,
        0);
    std::vector<int> result_field_cover(
        result_struct != nullptr ? result_struct->fields().size() : 0, 0);
    int result_cover = 0;
    int disc_cover = 0;

    auto tally = [&](const ParamPresentation& p) {
      const Binding& b = p.binding;
      switch (b.kind) {
        case BindingKind::kParam:
          if (b.param_index < 0 ||
              b.param_index >= static_cast<int>(op.params.size())) {
            Report("FLEX008", op.pos,
                   StrFormat("binding of '%s' targets nonexistent "
                             "parameter %d of '%s'",
                             p.name.c_str(), b.param_index,
                             op.name.c_str()));
          } else {
            ++param_cover[static_cast<size_t>(b.param_index)];
          }
          break;
        case BindingKind::kParamField:
          if (b.param_index != flatten_arg || b.field_index < 0 ||
              b.field_index >= static_cast<int>(arg_field_cover.size())) {
            Report("FLEX008", op.pos,
                   StrFormat("binding of '%s' targets nonexistent field "
                             "%d of parameter %d of '%s'",
                             p.name.c_str(), b.field_index, b.param_index,
                             op.name.c_str()));
          } else {
            ++arg_field_cover[static_cast<size_t>(b.field_index)];
          }
          break;
        case BindingKind::kResult:
          ++result_cover;
          break;
        case BindingKind::kResultField:
          if (b.field_index < 0 ||
              b.field_index >= static_cast<int>(result_field_cover.size())) {
            Report("FLEX008", op.pos,
                   StrFormat("binding of '%s' targets nonexistent result "
                             "field %d of '%s'",
                             p.name.c_str(), b.field_index,
                             op.name.c_str()));
          } else {
            ++result_field_cover[static_cast<size_t>(b.field_index)];
          }
          break;
        case BindingKind::kResultDiscriminant:
          ++disc_cover;
          break;
        case BindingKind::kPresentationOnly:
          break;
      }
    };
    for (const ParamPresentation& p : pres.params) {
      tally(p);
    }
    tally(pres.result);

    for (size_t i = 0; i < op.params.size(); ++i) {
      bool flattened_here =
          pres.args_flattened && static_cast<int>(i) == flatten_arg;
      if (flattened_here) {
        if (param_cover[i] != 0) {
          Report("FLEX008", op.params[i].pos,
                 StrFormat("parameter '%s' of '%s' is both flattened into "
                           "fields and carried whole",
                           op.params[i].name.c_str(), op.name.c_str()));
        }
        for (size_t fi = 0; fi < arg_field_cover.size(); ++fi) {
          if (arg_field_cover[fi] != 1) {
            Report("FLEX008", op.params[i].pos,
                   StrFormat("field '%s' of flattened parameter '%s' of "
                             "'%s' is carried by %d stub slots (need "
                             "exactly 1)",
                             op.params[i].type->Resolve()
                                 ->fields()[fi].name.c_str(),
                             op.params[i].name.c_str(), op.name.c_str(),
                             arg_field_cover[fi]));
          }
        }
        continue;
      }
      if (param_cover[i] != 1) {
        Report("FLEX008", op.params[i].pos,
               StrFormat("parameter '%s' of '%s' is carried by %d stub "
                         "slots (need exactly 1)",
                         op.params[i].name.c_str(), op.name.c_str(),
                         param_cover[i]));
      }
    }

    bool result_void = result_resolved->kind() == TypeKind::kVoid;
    if (result_void) {
      return;
    }
    if (pres.result_flattened) {
      if (result_cover != 0) {
        Report("FLEX008", op.pos,
               StrFormat("result of '%s' is both flattened into fields "
                         "and carried whole",
                         op.name.c_str()));
      }
      for (size_t fi = 0; fi < result_field_cover.size(); ++fi) {
        if (result_field_cover[fi] != 1) {
          Report("FLEX008", op.pos,
                 StrFormat("result field '%s' of '%s' is carried by %d "
                           "stub slots (need exactly 1)",
                           result_struct->fields()[fi].name.c_str(),
                           op.name.c_str(), result_field_cover[fi]));
        }
      }
      if (result_union && disc_cover != 1) {
        Report("FLEX008", op.pos,
               StrFormat("discriminant of '%s''s flattened union result "
                         "is carried by %d stub slots (need exactly 1)",
                         op.name.c_str(), disc_cover));
      }
    } else if (result_cover != 1) {
      Report("FLEX008", op.pos,
             StrFormat("result of '%s' is carried by %d stub slots (need "
                       "exactly 1)",
                       op.name.c_str(), result_cover));
    }
  }

  // A presentation-only slot exists to carry something (an explicit
  // length); one nothing references is almost certainly a typo'd
  // [length_is] target.
  void LintDeadSlots(const OperationDecl& op, const OpPresentation& pres) {
    for (const ParamPresentation& p : pres.params) {
      if (!p.presentation_only) {
        continue;
      }
      bool referenced = false;
      for (const ParamPresentation& q : pres.params) {
        if (q.explicit_length && q.length_param == p.name) {
          referenced = true;
          break;
        }
      }
      if (!referenced && pres.result.explicit_length &&
          pres.result.length_param == p.name) {
        referenced = true;
      }
      if (!referenced) {
        Report("FLEX010", op.pos,
               StrFormat("presentation-only slot '%s' of '%s' is never "
                         "referenced by a [length_is]; it occupies a stub "
                         "parameter but carries nothing",
                         p.name.c_str(), op.name.c_str()));
      }
    }
  }

  const InterfaceDecl& itf_;
  const InterfacePresentation& pres_;
  LintOptions opts_;
  Reporter reporter_;
};

}  // namespace

int LintPresentation(const InterfaceFile& idl, const InterfaceDecl& itf,
                     const InterfacePresentation& pres,
                     DiagnosticSink* diags, const LintOptions& opts) {
  return PresentationLinter(idl, itf, pres, diags, opts).Run();
}

int LintPresentationSet(const InterfaceFile& idl, const PresentationSet& set,
                        DiagnosticSink* diags, const LintOptions& opts) {
  int count = 0;
  for (const InterfaceDecl& itf : idl.interfaces) {
    const InterfacePresentation* pres = set.Find(itf.name);
    if (pres != nullptr) {
      count += LintPresentation(idl, itf, *pres, diags, opts);
    }
  }
  return count;
}

}  // namespace flexrpc
