// flexrec analysis — latency attribution over flight-recorder timelines.
//
// A recording (src/support/recorder.h) is a flat event stream; this layer
// turns it into answers: where did each call's virtual time go, which
// retransmits were caused by the wire and which by a too-eager RTO, and
// how full the pipeline window actually was over the run.
//
// Attribution is exact by construction. For every completed call the
// analyzer builds labeled virtual-time intervals from the call's events —
// queued-before-first-transmit, request wire occupancy, request
// propagation, server execution, reply wire occupancy, reply propagation —
// clips them to [submit, complete], splits the call's lifetime into
// elementary segments at interval boundaries, and assigns each segment to
// exactly one phase by a fixed priority (server exec wins over wire
// occupancy wins over propagation wins over queued). Whatever no interval
// covers is retransmit/backoff wait. The per-phase nanos therefore sum to
// complete - submit exactly — the invariant the recorder tests gate on.

#ifndef FLEXRPC_SRC_ANALYSIS_FLEXREC_H_
#define FLEXRPC_SRC_ANALYSIS_FLEXREC_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/support/recorder.h"

namespace flexrpc {

// One call's virtual-time budget. The six phase fields plus wait_nanos sum
// to total_nanos for every call with a matched submit/complete pair.
struct CallBreakdown {
  uint32_t xid = 0;
  uint32_t conn = 0;           // connection tag; 0 = unmultiplexed. Calls
                               // are keyed by (conn, xid) — under the mux
                               // xids are only unique per connection.
  bool complete = false;       // saw both kCallSubmit and kCallComplete
  bool truncated = false;      // the ring dropped this call's submit (or
                               // the pair is inconsistent); the call is
                               // listed but excluded from attribution and
                               // aggregates — its span has no anchor
  uint64_t status_code = 0;    // StatusCode of the completion (0 = ok)
  uint64_t submit_nanos = 0;
  uint64_t total_nanos = 0;    // complete - submit

  uint64_t queued_nanos = 0;       // submitted but not yet on the wire
  uint64_t req_wire_nanos = 0;     // request frames occupying the wire
  uint64_t req_prop_nanos = 0;     // request propagation + handling delay
  uint64_t server_exec_nanos = 0;  // modeled server CPU
  uint64_t reply_wire_nanos = 0;   // reply frames occupying the wire
  uint64_t reply_prop_nanos = 0;   // reply propagation + handling delay
  uint64_t wait_nanos = 0;  // uncovered: RTO backoff, lost-frame gaps,
                            // server queueing behind earlier calls

  uint32_t attempts = 1;               // 1 + retransmits
  uint32_t drop_induced_retransmits = 0;  // consumed a recorded loss
  uint32_t spurious_retransmits = 0;      // fired with no loss to blame
};

// In-flight call count change point (a first transmission or a
// completion — submission time would overstate occupancy on the pipelined
// path, which queues submissions behind a full window).
struct WindowSample {
  uint64_t at_nanos = 0;
  uint32_t in_flight = 0;
};

struct RecordingAnalysis {
  std::vector<CallBreakdown> calls;  // in submission order
  std::vector<WindowSample> window;  // occupancy timeline, change points

  // AIMD window evolution (kCwndChange events, adaptive transports only;
  // in_flight carries the new window value). Empty for fixed-window runs.
  std::vector<WindowSample> cwnd;

  uint64_t dropped_events = 0;  // recording truncation carried through
  uint64_t truncated_calls = 0;  // completions whose submit the ring
                                 // dropped — marked, never attributed
  uint32_t max_in_flight = 0;
  uint64_t span_nanos = 0;  // last event time - first event time

  // Aggregates over completed calls.
  uint64_t completed_calls = 0;
  uint64_t failed_calls = 0;  // completed with non-ok status
  uint64_t total_retransmits = 0;
  uint64_t drop_induced_retransmits = 0;
  uint64_t spurious_retransmits = 0;

  // Adaptive-transport aggregates (kRttSample / kCwndChange events).
  uint64_t rtt_samples = 0;
  uint64_t cwnd_increases = 0;
  uint64_t cwnd_decreases = 0;

  // Managed-binding aggregates (kFailover / kRebind events and per-replica
  // event tags; present only for recordings made through a BinderTransport).
  struct FailoverSummary {
    bool present = false;      // any failover/rebind/replica-tagged event
    uint64_t suspects = 0;     // healthy -> suspect transitions   (b=1)
    uint64_t probes_sent = 0;  // probe submissions                (b=2)
    uint64_t reinstates = 0;   // suspect -> healthy transitions   (b=3)
    uint64_t cutovers = 0;     // new-primary elections            (b=4)
    uint64_t rebinds = 0;      // live xids migrated across replicas
    // First cutover to the next successful completion — the recording's
    // own measure of time-to-recover. 0 when no OK completion followed.
    uint64_t cutover_to_recovery_nanos = 0;
    std::map<uint32_t, uint64_t> per_replica_submits;  // tag -> submissions
  };
  FailoverSummary failover;
};

// Attributes every call in the recording. Deterministic: same recording,
// same analysis.
RecordingAnalysis AnalyzeRecording(const Recording& recording);

// Renders the analysis as a fixed-width text report: aggregate summary,
// retransmit cause classification, a window-occupancy timeline, and a
// per-call phase table (capped at max_call_rows rows; pass SIZE_MAX for
// all). Output is deterministic — CI runs it as a smoke check.
std::string RenderReport(const RecordingAnalysis& analysis,
                         size_t max_call_rows = 32);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_ANALYSIS_FLEXREC_H_
