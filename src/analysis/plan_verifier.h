// flexcheck stage 2: the marshal-plan verifier.
//
// A MarshalProgram is the runtime analogue of the paper's bind-time
// combination signature: a compiled list of wire items executed per call.
// This pass audits a plan the way a bytecode verifier audits a method:
//
//   * every wire item of the operation appears exactly once, in IDL order
//     (request = in/inout params; reply = inout/out params then the
//     result)                                                    [FLEX101]
//   * every slot index is within slot_count                      [FLEX102]
//   * a [length_is] slot carried on the wire is marshaled before the
//     buffer that references it                                  [FLEX103]
//   * the result occupies the final slot                         [FLEX104]
//   * no slot carries two wire items of one stream, which would make
//     ReleaseRequest/ReleaseReply free it twice                  [FLEX105]
//   * flattened items have a slot for every field (and the union
//     discriminant)                                              [FLEX106]
//
// The verifier consumes the MarshalPlanView introspection surface, so tests
// can corrupt a hand-built view and prove each violation is caught. It is
// also wired into the RPC runtime behind SetVerifyPlansAtBind (runtime.h)
// and into `idlc --check`.

#ifndef FLEXRPC_SRC_ANALYSIS_PLAN_VERIFIER_H_
#define FLEXRPC_SRC_ANALYSIS_PLAN_VERIFIER_H_

#include <string>

#include "src/idl/ast.h"
#include "src/marshal/engine.h"
#include "src/support/diag.h"

namespace flexrpc {

// Audits `plan` against the operation and presentation it was compiled
// from. Diagnostics are attributed to `file`. Returns the number of
// diagnostics emitted (0 = plan verified clean).
int VerifyMarshalPlan(const OperationDecl& op, const OpPresentation& pres,
                      const MarshalPlanView& plan, const std::string& file,
                      DiagnosticSink* diags);

// Convenience: verifies a compiled program's own plan.
int VerifyProgram(const MarshalProgram& program, const std::string& file,
                  DiagnosticSink* diags);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_ANALYSIS_PLAN_VERIFIER_H_
