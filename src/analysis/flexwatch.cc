#include "src/analysis/flexwatch.h"

#include <algorithm>
#include <map>
#include <string>

#include "src/support/strings.h"

namespace flexrpc {

namespace {

// Gauge/counter names the fleet registers (src/sim/fleet.cc). The
// analysis degrades gracefully when a series is absent — a timeline from
// a different harness still gets ribbons and sketch-derived onset.
constexpr char kQueueDepthGauge[] = "dispatch.queue_depth";
constexpr char kShedCounter[] = "dispatch.shed";
constexpr char kCompletedCounter[] = "mux.completed";

const Timeline::Series* FindSeries(const std::vector<Timeline::Series>& all,
                                   const std::string& name) {
  for (const Timeline::Series& s : all) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

uint64_t SampleAt(const Timeline::Series* series, uint64_t window) {
  if (series == nullptr || window >= series->samples.size()) {
    return 0;
  }
  return series->samples[window];
}

// Queue depth per window: the dispatch gauge when the harness registered
// one, else the per-window max of kQueueDepth sketch observations.
std::vector<uint64_t> DepthPerWindow(const Timeline& timeline) {
  std::vector<uint64_t> depth(timeline.ticks, 0);
  const Timeline::Series* gauge =
      FindSeries(timeline.gauges, kQueueDepthGauge);
  if (gauge != nullptr) {
    for (uint64_t w = 0; w < timeline.ticks; ++w) {
      depth[w] = SampleAt(gauge, w);
    }
    return depth;
  }
  for (const auto& [key, sketch] : timeline.sketches) {
    if (key.series == static_cast<uint16_t>(WatchSeries::kQueueDepth) &&
        key.window < depth.size()) {
      depth[key.window] = std::max(depth[key.window], sketch.max());
    }
  }
  return depth;
}

// First window opening a sustained climb: depth positive, non-decreasing
// across the next two windows, strictly higher by the end. Integer rule —
// no smoothing, no floats — so two runs of the same timeline agree.
int64_t DetectOnset(const std::vector<uint64_t>& depth) {
  if (depth.size() < 3) {
    return -1;
  }
  for (uint64_t w = 0; w + 2 < depth.size(); ++w) {
    if (depth[w] > 0 && depth[w + 1] >= depth[w] &&
        depth[w + 2] >= depth[w + 1] && depth[w + 2] > depth[w]) {
      return static_cast<int64_t>(w);
    }
  }
  return -1;
}

std::vector<WatchDimTotal> SortedTotals(
    const std::map<uint32_t, QuantileSketch>& by_dim) {
  std::vector<WatchDimTotal> out;
  out.reserve(by_dim.size());
  for (const auto& [dim, sketch] : by_dim) {
    WatchDimTotal t;
    t.dim = dim;
    t.count = sketch.count();
    t.sum_nanos = sketch.sum();
    t.p99_nanos = sketch.Quantile(0.99);
    out.push_back(t);
  }
  std::sort(out.begin(), out.end(),
            [](const WatchDimTotal& a, const WatchDimTotal& b) {
              if (a.sum_nanos != b.sum_nanos) {
                return a.sum_nanos > b.sum_nanos;
              }
              return a.dim < b.dim;
            });
  return out;
}

// "1234567" ns -> "1234.567" (microseconds, three decimals, no floats).
std::string Micros(uint64_t nanos) {
  return StrFormat("%llu.%03llu",
                   static_cast<unsigned long long>(nanos / 1000),
                   static_cast<unsigned long long>(nanos % 1000));
}

void AppendDimTable(std::string* out, const char* title, const char* dim_label,
                    const std::vector<WatchDimTotal>& totals,
                    size_t max_rows) {
  if (totals.empty()) {
    return;
  }
  *out += StrFormat("%s (by total latency)\n", title);
  *out += StrFormat("  %-8s %8s %14s %12s\n", dim_label, "count", "sum_us",
                    "p99_us");
  size_t rows = std::min(totals.size(), max_rows);
  for (size_t i = 0; i < rows; ++i) {
    const WatchDimTotal& t = totals[i];
    *out += StrFormat("  %-8u %8llu %14s %12s\n", t.dim,
                      static_cast<unsigned long long>(t.count),
                      Micros(t.sum_nanos).c_str(),
                      Micros(t.p99_nanos).c_str());
  }
  if (totals.size() > rows) {
    *out += StrFormat("  ... %zu more\n", totals.size() - rows);
  }
}

uint64_t CounterTotal(const Timeline::Series& series) {
  uint64_t total = 0;
  for (uint64_t v : series.samples) {
    total += v;
  }
  return total;
}

}  // namespace

WatchAnalysis AnalyzeTimeline(const Timeline& timeline) {
  WatchAnalysis analysis;
  analysis.tick_nanos = timeline.tick_nanos;
  analysis.ticks = timeline.ticks;

  // Per-window call-latency sketches merged across connections, plus the
  // whole-run per-dimension accumulators for attribution.
  std::map<uint64_t, QuantileSketch> latency_by_window;
  std::map<uint32_t, QuantileSketch> conns;
  std::map<uint32_t, QuantileSketch> workers;
  std::map<uint32_t, QuantileSketch> replicas;
  for (const auto& [key, sketch] : timeline.sketches) {
    switch (static_cast<WatchSeries>(key.series)) {
      case WatchSeries::kCallLatency:
        latency_by_window[key.window].Merge(sketch);
        conns[key.dim].Merge(sketch);
        break;
      case WatchSeries::kWorkerExec:
        workers[key.dim].Merge(sketch);
        break;
      case WatchSeries::kReplicaLatency:
        replicas[key.dim].Merge(sketch);
        break;
      case WatchSeries::kQueueDepth:
        break;  // consumed by DepthPerWindow
      default:
        break;  // unknown series from a newer writer: ignore
    }
  }

  std::vector<uint64_t> depth = DepthPerWindow(timeline);
  const Timeline::Series* shed = FindSeries(timeline.counters, kShedCounter);
  const Timeline::Series* completed =
      FindSeries(timeline.counters, kCompletedCounter);

  analysis.windows.reserve(timeline.ticks);
  for (uint64_t w = 0; w < timeline.ticks; ++w) {
    WatchWindow win;
    win.window = w;
    win.start_nanos = timeline.start_nanos + w * timeline.tick_nanos;
    auto it = latency_by_window.find(w);
    if (it != latency_by_window.end() && !it->second.empty()) {
      win.calls = it->second.count();
      win.p50_nanos = it->second.Quantile(0.50);
      win.p99_nanos = it->second.Quantile(0.99);
      win.max_nanos = it->second.max();
    }
    win.queue_depth = w < depth.size() ? depth[w] : 0;
    win.shed = SampleAt(shed, w);
    win.completed = SampleAt(completed, w);
    analysis.windows.push_back(win);
  }

  analysis.onset_window = DetectOnset(depth);
  if (analysis.onset_window >= 0) {
    analysis.onset_nanos =
        timeline.start_nanos +
        static_cast<uint64_t>(analysis.onset_window) * timeline.tick_nanos;
  }

  analysis.connections = SortedTotals(conns);
  analysis.workers = SortedTotals(workers);
  analysis.replicas = SortedTotals(replicas);
  return analysis;
}

std::string RenderWatchReport(const WatchAnalysis& analysis,
                              size_t max_window_rows) {
  std::string out;
  out += StrFormat("flexwatch: %llu windows x %s us tick\n",
                   static_cast<unsigned long long>(analysis.ticks),
                   Micros(analysis.tick_nanos).c_str());
  if (analysis.windows.empty()) {
    out += "  (no windows recorded)\n";
    return out;
  }
  out += StrFormat("  %6s %10s %8s %12s %12s %7s %7s %7s\n", "window",
                   "t_us", "calls", "p50_us", "p99_us", "queue", "shed",
                   "done");
  size_t rows = std::min(analysis.windows.size(), max_window_rows);
  for (size_t i = 0; i < rows; ++i) {
    const WatchWindow& w = analysis.windows[i];
    std::string marker =
        analysis.onset_window == static_cast<int64_t>(w.window) ? "  <- onset"
                                                                : "";
    out += StrFormat("  %6llu %10s %8llu %12s %12s %7llu %7llu %7llu%s\n",
                     static_cast<unsigned long long>(w.window),
                     Micros(w.start_nanos).c_str(),
                     static_cast<unsigned long long>(w.calls),
                     Micros(w.p50_nanos).c_str(), Micros(w.p99_nanos).c_str(),
                     static_cast<unsigned long long>(w.queue_depth),
                     static_cast<unsigned long long>(w.shed),
                     static_cast<unsigned long long>(w.completed),
                     marker.c_str());
  }
  if (analysis.windows.size() > rows) {
    out += StrFormat("  ... %zu more windows\n",
                     analysis.windows.size() - rows);
  }
  if (analysis.onset_window >= 0) {
    out += StrFormat(
        "saturation onset: window %lld (t=%s us, sustained queue growth)\n",
        static_cast<long long>(analysis.onset_window),
        Micros(analysis.onset_nanos).c_str());
  } else {
    out += "saturation onset: none (queue never grew for 3 windows)\n";
  }
  AppendDimTable(&out, "connections", "conn", analysis.connections, 8);
  AppendDimTable(&out, "workers", "worker", analysis.workers, 8);
  AppendDimTable(&out, "replicas", "replica", analysis.replicas, 8);
  return out;
}

std::string DiffTimelines(const Timeline& a, const Timeline& b,
                          size_t max_window_rows) {
  std::string out;
  out += StrFormat(
      "timeline diff: a=%llu windows x %s us, b=%llu windows x %s us\n",
      static_cast<unsigned long long>(a.ticks), Micros(a.tick_nanos).c_str(),
      static_cast<unsigned long long>(b.ticks), Micros(b.tick_nanos).c_str());
  if (a.tick_nanos != b.tick_nanos) {
    out += "  warning: tick sizes differ; window indices are not aligned\n";
  }

  WatchAnalysis wa = AnalyzeTimeline(a);
  WatchAnalysis wb = AnalyzeTimeline(b);
  auto onset_str = [](int64_t w) {
    return w >= 0 ? StrFormat("window %lld", static_cast<long long>(w))
                  : std::string("none");
  };
  out += StrFormat("  onset: a=%s b=%s%s\n", onset_str(wa.onset_window).c_str(),
                   onset_str(wb.onset_window).c_str(),
                   wa.onset_window == wb.onset_window ? " (agree)"
                                                      : " (DIFFER)");

  // Counter totals side by side: every name present in either timeline.
  std::map<std::string, std::pair<uint64_t, uint64_t>> totals;
  for (const Timeline::Series& s : a.counters) {
    totals[s.name].first = CounterTotal(s);
  }
  for (const Timeline::Series& s : b.counters) {
    totals[s.name].second = CounterTotal(s);
  }
  if (!totals.empty()) {
    out += StrFormat("  %-24s %12s %12s %12s\n", "counter", "a", "b", "delta");
    for (const auto& [name, ab] : totals) {
      int64_t delta = static_cast<int64_t>(ab.second) -
                      static_cast<int64_t>(ab.first);
      out += StrFormat("  %-24s %12llu %12llu %+12lld\n", name.c_str(),
                       static_cast<unsigned long long>(ab.first),
                       static_cast<unsigned long long>(ab.second),
                       static_cast<long long>(delta));
    }
  }

  // Per-window p99 ribbon deltas over the shared prefix.
  uint64_t shared = std::min(wa.ticks, wb.ticks);
  uint64_t rows = std::min<uint64_t>(shared, max_window_rows);
  if (rows > 0) {
    out += StrFormat("  %6s %12s %12s %14s\n", "window", "a_p99_us",
                     "b_p99_us", "delta_us");
    for (uint64_t w = 0; w < rows; ++w) {
      const WatchWindow& x = wa.windows[w];
      const WatchWindow& y = wb.windows[w];
      int64_t delta = static_cast<int64_t>(y.p99_nanos) -
                      static_cast<int64_t>(x.p99_nanos);
      char sign = delta < 0 ? '-' : '+';
      uint64_t mag = delta < 0 ? static_cast<uint64_t>(-delta)
                               : static_cast<uint64_t>(delta);
      out += StrFormat("  %6llu %12s %12s %c%13s\n",
                       static_cast<unsigned long long>(w),
                       Micros(x.p99_nanos).c_str(), Micros(y.p99_nanos).c_str(),
                       sign, Micros(mag).c_str());
    }
    if (shared > rows) {
      out += StrFormat("  ... %llu more shared windows\n",
                       static_cast<unsigned long long>(shared - rows));
    }
  }
  if (wa.ticks != wb.ticks) {
    out += StrFormat("  window count differs: a=%llu b=%llu\n",
                     static_cast<unsigned long long>(wa.ticks),
                     static_cast<unsigned long long>(wb.ticks));
  }
  return out;
}

}  // namespace flexrpc
