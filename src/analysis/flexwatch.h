// flexwatch analysis — saturation-onset detection and per-window latency
// ribbons over flexwatch timelines.
//
// A Timeline (src/support/timeline.h) is raw per-window material: counter
// deltas, gauge samples, and dimensioned quantile sketches. This layer
// turns it into answers: how p50/p99 evolved window by window (the
// "ribbon" the report renders), *when* queueing began (the saturation
// onset window — the first window opening a sustained queue-depth climb),
// and which connections / workers / replicas the latency concentrates on.
// flexrec answers the same saturation question per call (queued-phase
// attribution); the two are cross-checked in bench_fleet_nfs.
//
// Everything here is integer arithmetic over an already-deterministic
// artifact, so the analysis and both renderers are deterministic too.

#ifndef FLEXRPC_SRC_ANALYSIS_FLEXWATCH_H_
#define FLEXRPC_SRC_ANALYSIS_FLEXWATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/timeline.h"

namespace flexrpc {

// One window of the ribbon: call-latency quantiles merged across every
// connection, alongside that window's queue/shed/throughput readings.
struct WatchWindow {
  uint64_t window = 0;       // index into the timeline
  uint64_t start_nanos = 0;  // window start on the virtual clock
  uint64_t calls = 0;        // call-latency observations in the window
  uint64_t p50_nanos = 0;
  uint64_t p99_nanos = 0;
  uint64_t max_nanos = 0;
  uint64_t queue_depth = 0;  // dispatch.queue_depth gauge at window close
  uint64_t shed = 0;         // dispatch.shed delta in the window
  uint64_t completed = 0;    // mux.completed delta in the window
};

// Per-dimension latency totals for one series, used for attribution
// ("which connection / worker / replica is the time going to").
struct WatchDimTotal {
  uint32_t dim = 0;
  uint64_t count = 0;
  uint64_t sum_nanos = 0;
  uint64_t p99_nanos = 0;  // over the dimension's whole run
};

struct WatchAnalysis {
  uint64_t tick_nanos = 0;
  uint64_t ticks = 0;
  std::vector<WatchWindow> windows;  // dense, one per recorded window

  // The saturation onset: the first window starting a sustained
  // queue-depth climb — depth positive, non-decreasing across the next
  // two windows, and strictly higher by the end (an integer rule, so the
  // detection is reproducible). -1 when the run never saturates.
  int64_t onset_window = -1;
  uint64_t onset_nanos = 0;  // that window's start time

  // Attribution, descending by sum_nanos (ties by dim ascending).
  std::vector<WatchDimTotal> connections;  // call_latency_nanos by conn
  std::vector<WatchDimTotal> workers;      // worker_exec_nanos by worker
  std::vector<WatchDimTotal> replicas;     // replica_latency_nanos by tag
};

// Analyzes a timeline. Deterministic: same timeline, same analysis.
WatchAnalysis AnalyzeTimeline(const Timeline& timeline);

// Fixed-width text report: the per-window ribbon, the detected onset, and
// the per-dimension attribution tables. Deterministic.
std::string RenderWatchReport(const WatchAnalysis& analysis,
                              size_t max_window_rows = 64);

// Run-over-run comparison: tick/shape drift, per-window p99 ribbon deltas,
// and counter-total deltas between two timelines (e.g. two seeds, or the
// same seed before/after a change). Deterministic.
std::string DiffTimelines(const Timeline& a, const Timeline& b,
                          size_t max_window_rows = 64);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_ANALYSIS_FLEXWATCH_H_
