#include "src/analysis/plan_verifier.h"

#include <map>
#include <vector>

#include "src/analysis/flexcheck.h"
#include "src/support/strings.h"

namespace flexrpc {

namespace {

// One slot-carrying unit of a stream, in execution order: a direct item,
// a union discriminant, or one flattened field.
struct Unit {
  int slot = -1;
  const Type* type = nullptr;
  const ParamPresentation* pres = nullptr;
  bool missing = false;  // flattened field with no slot (FLEX106)
};

class PlanVerifier {
 public:
  PlanVerifier(const OperationDecl& op, const OpPresentation& pres,
               const MarshalPlanView& plan, const std::string& file,
               DiagnosticSink* diags)
      : op_(op), pres_(pres), plan_(plan), file_(file), diags_(diags) {}

  int Run() {
    CheckStream("request", plan_.request, ExpectedRequest());
    CheckStream("reply", plan_.reply, ExpectedReply());
    return count_;
  }

 private:
  struct Expected {
    const Type* type = nullptr;
    ParamDir dir = ParamDir::kIn;
    bool is_result = false;
    std::string name;
  };

  void Report(std::string_view code, std::string message) {
    const FlexCodeInfo* info = FindFlexCode(code);
    diags_->Report(info != nullptr ? info->severity : DiagSeverity::kError,
                   std::string(code), file_, op_.pos, std::move(message));
    ++count_;
  }

  std::vector<Expected> ExpectedRequest() const {
    std::vector<Expected> out;
    for (const ParamDecl& p : op_.params) {
      if (p.dir != ParamDir::kOut) {
        out.push_back(Expected{p.type, p.dir, false, p.name});
      }
    }
    return out;
  }

  std::vector<Expected> ExpectedReply() const {
    std::vector<Expected> out;
    for (const ParamDecl& p : op_.params) {
      if (p.dir != ParamDir::kIn) {
        out.push_back(Expected{p.type, p.dir, false, p.name});
      }
    }
    if (op_.result->Resolve()->kind() != TypeKind::kVoid) {
      out.push_back(Expected{op_.result, ParamDir::kOut, true, "return"});
    }
    return out;
  }

  // Slot of a named presentation parameter (slot order = param order).
  int SlotOf(std::string_view name) const {
    for (size_t i = 0; i < pres_.params.size(); ++i) {
      if (pres_.params[i].name == name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  void CheckStream(const char* stream_name,
                   const std::vector<PlanItemView>& items,
                   const std::vector<Expected>& expected) {
    // FLEX101: the stream must carry exactly the interface's wire items,
    // in IDL order. This is the invariant that keeps differently-presented
    // endpoints interoperable byte-for-byte.
    if (items.size() != expected.size()) {
      Report("FLEX101",
             StrFormat("%s stream of '%s' carries %zu wire items, the "
                       "interface defines %zu",
                       stream_name, op_.name.c_str(), items.size(),
                       expected.size()));
    }
    size_t n = std::min(items.size(), expected.size());
    for (size_t i = 0; i < n; ++i) {
      const PlanItemView& item = items[i];
      const Expected& want = expected[i];
      if (item.type != want.type || item.dir != want.dir ||
          item.is_result != want.is_result) {
        Report("FLEX101",
               StrFormat("%s item %zu of '%s' should carry '%s' (%s %s) "
                         "but the plan deviates",
                         stream_name, i, op_.name.c_str(),
                         want.name.c_str(),
                         std::string(ParamDirName(want.dir)).c_str(),
                         want.type->ToString().c_str()));
      }
    }

    // Flatten the stream into slot-carrying units in execution order.
    std::vector<Unit> units;
    for (const PlanItemView& item : items) {
      if (!item.flattened) {
        units.push_back(Unit{item.slot, item.type, item.pres, false});
        if (item.is_result && item.slot >= 0 &&
            item.slot != static_cast<int>(plan_.slot_count) - 1) {
          Report("FLEX104",
                 StrFormat("result of '%s' is in slot %d, not the final "
                           "slot %zu",
                           op_.name.c_str(), item.slot,
                           plan_.slot_count - 1));
        }
        continue;
      }
      bool union_result =
          item.is_result && item.type != nullptr &&
          item.type->Resolve()->kind() == TypeKind::kUnion;
      if (union_result) {
        if (item.disc_slot < 0) {
          Report("FLEX106",
                 StrFormat("flattened union result of '%s' has no "
                           "discriminant slot",
                           op_.name.c_str()));
        } else {
          units.push_back(Unit{item.disc_slot, nullptr, nullptr, false});
        }
      }
      for (size_t fi = 0; fi < item.fields.size(); ++fi) {
        const PlanFieldView& field = item.fields[fi];
        if (field.slot < 0 || field.type == nullptr) {
          Report("FLEX106",
                 StrFormat("flattened item of '%s' has no slot for field "
                           "%zu: the wire item would be skipped",
                           op_.name.c_str(), fi));
          units.push_back(Unit{-1, field.type, field.pres, true});
        } else {
          units.push_back(Unit{field.slot, field.type, field.pres, false});
        }
      }
    }

    // FLEX102 / FLEX105: slot range and per-stream uniqueness.
    std::map<int, size_t> first_at;  // slot -> unit index
    for (size_t u = 0; u < units.size(); ++u) {
      if (units[u].missing) {
        continue;
      }
      int slot = units[u].slot;
      if (slot < 0 || slot >= static_cast<int>(plan_.slot_count)) {
        Report("FLEX102",
               StrFormat("%s stream of '%s' addresses slot %d outside the "
                         "argument vector (%zu slots)",
                         stream_name, op_.name.c_str(), slot,
                         plan_.slot_count));
        continue;
      }
      auto [it, inserted] = first_at.emplace(slot, u);
      if (!inserted) {
        Report("FLEX105",
               StrFormat("slot %d carries two wire items of the %s stream "
                         "of '%s'; release would free it twice",
                         slot, stream_name, op_.name.c_str()));
      }
    }

    // FLEX103: a length carried on the wire must precede its buffer.
    for (size_t u = 0; u < units.size(); ++u) {
      const ParamPresentation* p = units[u].pres;
      if (p == nullptr || !p->explicit_length) {
        continue;
      }
      int len_slot = SlotOf(p->length_param);
      if (len_slot < 0) {
        continue;  // stage 1 reports the dangling name (FLEX003)
      }
      auto it = first_at.find(len_slot);
      if (it != first_at.end() && it->second >= u) {
        Report("FLEX103",
               StrFormat("buffer '%s' of '%s' reads [length_is(%s)] from "
                         "slot %d, which the %s stream marshals at or "
                         "after the buffer itself",
                         p->name.c_str(), op_.name.c_str(),
                         p->length_param.c_str(), len_slot, stream_name));
      }
    }
  }

  const OperationDecl& op_;
  const OpPresentation& pres_;
  const MarshalPlanView& plan_;
  const std::string& file_;
  DiagnosticSink* diags_;
  int count_ = 0;
};

}  // namespace

int VerifyMarshalPlan(const OperationDecl& op, const OpPresentation& pres,
                      const MarshalPlanView& plan, const std::string& file,
                      DiagnosticSink* diags) {
  return PlanVerifier(op, pres, plan, file, diags).Run();
}

int VerifyProgram(const MarshalProgram& program, const std::string& file,
                  DiagnosticSink* diags) {
  return VerifyMarshalPlan(program.op(), program.presentation(),
                           program.Plan(), file, diags);
}

}  // namespace flexrpc
