// flexspec profile reader: ranks marshal plans by observed hotness.
//
// BENCH_*.json artifacts (bench/bench_util) carry a "marshal_profile"
// section — per-(signature × presentation) call and byte counts the
// engine's interned profile cells accumulated inside the traced window.
// REC_*.json flight recordings (src/support/recorder.h) carry marshal
// begin/end events without plan identity; they corroborate that marshal
// work happened but cannot attribute it, so they land in an unattributed
// bucket reported alongside the ranking.
//
// `idlc --specialize --profile=PATH` feeds files (or directories, scanned
// for BENCH_*/REC_* names) through this reader and specializes the top-K
// plans by Score() — weighted calls, with wire bytes as the tiebreaker.

#ifndef FLEXRPC_SRC_ANALYSIS_FLEXSPEC_PROFILE_H_
#define FLEXRPC_SRC_ANALYSIS_FLEXSPEC_PROFILE_H_

#include <string>
#include <vector>

#include "src/marshal/spec.h"
#include "src/support/status.h"

namespace flexrpc {

// One ranked plan, merged across every artifact that mentions its key.
struct ProfiledPlan {
  SpecKey key;
  std::string op_name;  // from the first artifact naming the key
  uint64_t marshal_calls = 0;
  uint64_t unmarshal_calls = 0;
  uint64_t wire_bytes = 0;

  // Hotness: every stream execution is one interpreter walk saved.
  uint64_t Score() const { return marshal_calls + unmarshal_calls; }
};

struct MarshalProfile {
  std::vector<ProfiledPlan> plans;  // sorted by Score() desc, key asc
  // Marshal spans seen in flexrec recordings (no plan identity).
  uint64_t unattributed_recording_spans = 0;
  size_t artifacts_read = 0;

  // The top-K keys to specialize (fewer when the profile is smaller).
  std::vector<SpecKey> TopKeys(size_t k) const;
  const ProfiledPlan* Find(const SpecKey& key) const;
};

// Merges one artifact's JSON text into `profile`. BENCH artifacts feed
// the ranking; REC recordings feed the unattributed bucket; anything
// else is an error.
Status MergeProfileArtifact(std::string_view json_text,
                            MarshalProfile* profile);

// Reads `path` (file, or directory scanned non-recursively for
// BENCH_*.json / REC_*.json entries) into `profile`. Missing paths and
// malformed artifacts are errors; an empty directory is not.
Status LoadProfilePath(const std::string& path, MarshalProfile* profile);

// Final ordering pass: sorts plans by Score() descending (key ascending
// as the deterministic tiebreaker). LoadProfilePath callers run this
// once after the last merge.
void FinalizeProfile(MarshalProfile* profile);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_ANALYSIS_FLEXSPEC_PROFILE_H_
