// flexcheck stage 1: the static presentation lint.
//
// Presentation annotations are *semantic promises* ([trashable],
// [preserved], [dealloc], trust levels) the stub compiler exploits for copy
// elision (paper §4) — a wrong or inconsistent annotation silently becomes
// memory corruption or a leak at runtime instead of a compile error. This
// pass runs on (InterfaceFile, InterfacePresentation) pairs after ApplyPdl
// and reports every finding as a coded diagnostic (FLEX001–FLEX012), so CI
// and tests can assert on exact codes.
//
// Severities:
//   error   — the combination is unsound (double free, violated contract);
//   warning — legal but almost certainly not what the author meant;
//   note    — advisor findings (--advise): elidable copies the paper's §4
//             optimizations would remove if the author annotated them.
//
// Stage 2 (the marshal-plan verifier) lives in plan_verifier.h.

#ifndef FLEXRPC_SRC_ANALYSIS_FLEXCHECK_H_
#define FLEXRPC_SRC_ANALYSIS_FLEXCHECK_H_

#include <string_view>
#include <vector>

#include "src/idl/ast.h"
#include "src/pdl/apply.h"
#include "src/pdl/presentation.h"
#include "src/support/diag.h"

namespace flexrpc {

// One entry of the stable diagnostic catalog. Codes never change meaning
// once shipped; DESIGN.md documents the rationale for each.
struct FlexCodeInfo {
  std::string_view code;
  DiagSeverity severity = DiagSeverity::kError;
  std::string_view summary;
};

// Every FLEX code both stages can emit, in code order.
const std::vector<FlexCodeInfo>& FlexCodeCatalog();

// Catalog lookup; null for unknown codes.
const FlexCodeInfo* FindFlexCode(std::string_view code);

struct LintOptions {
  // Emit the §4 advisor notes (FLEX011/FLEX012): elidable copies and
  // per-call allocations the author could annotate away. Off by default so
  // `idlc --lint` stays quiet on merely-unannotated interfaces.
  bool advisors = false;
};

// Lints one interface's presentation for one side. Returns the number of
// diagnostics emitted (all severities).
int LintPresentation(const InterfaceFile& idl, const InterfaceDecl& itf,
                     const InterfacePresentation& pres,
                     DiagnosticSink* diags, const LintOptions& opts = {});

// Lints every interface in `set` against `idl`.
int LintPresentationSet(const InterfaceFile& idl, const PresentationSet& set,
                        DiagnosticSink* diags, const LintOptions& opts = {});

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_ANALYSIS_FLEXCHECK_H_
