#include "src/analysis/flexrec.h"

#include <algorithm>
#include <map>

#include "src/support/strings.h"

namespace flexrpc {

namespace {

// Attribution priority: when intervals overlap, a segment belongs to the
// lowest-numbered phase covering it. Server exec wins over wire occupancy
// (the wire event's propagation window spans the whole server visit on a
// lockstep channel), occupancy wins over propagation, and queued only
// claims time nothing physical explains.
enum class Phase : uint8_t {
  kServerExec = 0,
  kReqWire,
  kReplyWire,
  kReqProp,
  kReplyProp,
  kQueued,
  kCount,
};

struct Interval {
  uint64_t lo = 0;
  uint64_t hi = 0;
  Phase phase = Phase::kQueued;
};

struct CallEvents {
  uint64_t submit = 0;
  uint64_t complete = 0;
  bool has_submit = false;
  bool has_complete = false;
  uint64_t status_code = 0;
  uint64_t first_tx = 0;
  bool has_tx = false;
  uint64_t pending_server_begin = 0;
  bool server_open = false;
  uint32_t attempts = 1;
  std::vector<Interval> intervals;
  std::vector<uint64_t> retransmit_times;
  std::vector<uint64_t> loss_times;  // drops + corruptions, either direction
};

uint64_t Overlap(uint64_t lo1, uint64_t hi1, uint64_t lo2, uint64_t hi2) {
  uint64_t lo = std::max(lo1, lo2);
  uint64_t hi = std::min(hi1, hi2);
  return hi > lo ? hi - lo : 0;
}

}  // namespace

RecordingAnalysis AnalyzeRecording(const Recording& recording) {
  RecordingAnalysis analysis;
  analysis.dropped_events = recording.dropped_events;

  // Chronological order; recording order is the deterministic tie-break
  // (server-exec spans are stamped with future timestamps).
  std::vector<const RecordedEvent*> ordered;
  ordered.reserve(recording.events.size());
  for (const RecordedEvent& e : recording.events) {
    ordered.push_back(&e);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const RecordedEvent* a, const RecordedEvent* b) {
                     return a->virtual_nanos < b->virtual_nanos;
                   });
  if (!ordered.empty()) {
    analysis.span_nanos =
        ordered.back()->virtual_nanos - ordered.front()->virtual_nanos;
  }

  // Call identity is the (conn, xid) pair: under the mux, xids are only
  // unique per connection, and merging two connections' same-xid calls
  // would cross-pair a submit with the other call's completion (the
  // total would underflow and the phase-sum invariant would break).
  // Unmultiplexed recordings carry conn 0 everywhere, so the key
  // degenerates to the xid and nothing changes.
  auto call_key = [](const RecordedEvent& e) {
    return (static_cast<uint64_t>(e.conn) << 32) | e.xid;
  };
  std::map<uint64_t, CallEvents> calls;  // keyed by (conn << 32) | xid
  std::vector<uint64_t> submit_order;
  uint64_t first_cutover_nanos = 0;
  bool saw_cutover = false;
  bool recovery_measured = false;

  for (const RecordedEvent* ep : ordered) {
    const RecordedEvent& e = *ep;
    if (e.replica != 0) {
      analysis.failover.present = true;
    }
    CallEvents& call = calls[call_key(e)];
    switch (e.type) {
      case RecEvent::kCallSubmit:
        call.submit = e.virtual_nanos;
        call.has_submit = true;
        submit_order.push_back(call_key(e));
        if (e.replica != 0) {
          ++analysis.failover.per_replica_submits[e.replica];
        }
        break;
      case RecEvent::kCallComplete:
        call.complete = e.virtual_nanos;
        call.has_complete = true;
        call.status_code = e.a;
        if (saw_cutover && !recovery_measured && e.a == 0) {
          analysis.failover.cutover_to_recovery_nanos =
              e.virtual_nanos - first_cutover_nanos;
          recovery_measured = true;
        }
        break;
      case RecEvent::kFailover:
        analysis.failover.present = true;
        switch (e.b) {
          case 1:
            ++analysis.failover.suspects;
            break;
          case 2:
            ++analysis.failover.probes_sent;
            break;
          case 3:
            ++analysis.failover.reinstates;
            break;
          case 4:
            ++analysis.failover.cutovers;
            if (!saw_cutover) {
              first_cutover_nanos = e.virtual_nanos;
              saw_cutover = true;
            }
            break;
          default:
            break;
        }
        break;
      case RecEvent::kRebind:
        analysis.failover.present = true;
        ++analysis.failover.rebinds;
        break;
      case RecEvent::kWireTx: {
        bool request = e.endpoint == RecEndpoint::kWireAtoB;
        uint64_t occupancy_end = e.virtual_nanos + e.a;
        call.intervals.push_back({e.virtual_nanos, occupancy_end,
                                  request ? Phase::kReqWire
                                          : Phase::kReplyWire});
        call.intervals.push_back({occupancy_end, occupancy_end + e.b,
                                  request ? Phase::kReqProp
                                          : Phase::kReplyProp});
        if (request && (!call.has_tx || e.virtual_nanos < call.first_tx)) {
          call.first_tx = e.virtual_nanos;
          call.has_tx = true;
        }
        break;
      }
      case RecEvent::kServerExecBegin:
        call.pending_server_begin = e.virtual_nanos;
        call.server_open = true;
        break;
      case RecEvent::kServerExecEnd:
        if (call.server_open) {
          call.intervals.push_back({call.pending_server_begin,
                                    e.virtual_nanos, Phase::kServerExec});
          call.server_open = false;
        }
        break;
      case RecEvent::kRetransmit:
        call.retransmit_times.push_back(e.virtual_nanos);
        call.attempts = std::max(call.attempts,
                                 static_cast<uint32_t>(e.a));
        break;
      case RecEvent::kFaultDrop:
      case RecEvent::kFaultCorrupt:
        call.loss_times.push_back(e.virtual_nanos);
        break;
      case RecEvent::kRttSample:
        ++analysis.rtt_samples;
        break;
      case RecEvent::kCwndChange:
        analysis.cwnd.push_back(
            {e.virtual_nanos, static_cast<uint32_t>(e.a)});
        if (e.b != 0) {
          ++analysis.cwnd_decreases;
        } else {
          ++analysis.cwnd_increases;
        }
        break;
      default:
        break;  // marshal spans are zero-width in virtual time; instants
                // (dup, delay, rto_fire, reply dispositions) carry no
                // attributable duration of their own
    }
  }

  for (uint64_t key : submit_order) {
    CallEvents& call = calls[key];
    CallBreakdown out;
    out.xid = static_cast<uint32_t>(key);
    out.conn = static_cast<uint32_t>(key >> 32);
    out.submit_nanos = call.submit;
    out.attempts = call.attempts;
    out.complete = call.has_complete;

    // Retransmit cause: each retransmit consumes the earliest unconsumed
    // recorded loss (drop or corruption, request or reply direction) that
    // precedes it. A retransmit with no loss to blame is a spurious RTO —
    // the timer fired although every frame was healthy, just slow.
    std::sort(call.loss_times.begin(), call.loss_times.end());
    size_t next_loss = 0;
    for (uint64_t rt : call.retransmit_times) {
      if (next_loss < call.loss_times.size() &&
          call.loss_times[next_loss] <= rt) {
        ++next_loss;
        ++out.drop_induced_retransmits;
      } else {
        ++out.spurious_retransmits;
      }
    }
    analysis.total_retransmits += call.retransmit_times.size();
    analysis.drop_induced_retransmits += out.drop_induced_retransmits;
    analysis.spurious_retransmits += out.spurious_retransmits;

    if (call.has_complete) {
      if (call.complete < call.submit) {
        // An inconsistent pair — a truncated ring can drain a call's
        // completion and then pair its key with a later submission (xid
        // reuse across the wrap). Attribution has no anchor; marking the
        // call beats letting complete - submit underflow.
        out.truncated = true;
        out.complete = false;
        out.status_code = call.status_code;
        ++analysis.truncated_calls;
        analysis.calls.push_back(out);
        continue;
      }
      ++analysis.completed_calls;
      if (call.status_code != 0) {
        ++analysis.failed_calls;
      }
      out.status_code = call.status_code;
      out.total_nanos = call.complete - call.submit;

      if (call.has_tx && call.first_tx > call.submit) {
        call.intervals.push_back(
            {call.submit, call.first_tx, Phase::kQueued});
      }

      // Elementary-segment sweep: split [submit, complete] at every
      // interval boundary and give each segment to the highest-priority
      // phase covering it. Segments no interval covers are wait. The
      // phase nanos sum to total_nanos exactly because every segment is
      // counted once.
      std::vector<uint64_t> cuts;
      cuts.push_back(call.submit);
      cuts.push_back(call.complete);
      for (const Interval& iv : call.intervals) {
        if (iv.hi > call.submit && iv.lo < call.complete) {
          cuts.push_back(std::max(iv.lo, call.submit));
          cuts.push_back(std::min(iv.hi, call.complete));
        }
      }
      std::sort(cuts.begin(), cuts.end());
      cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

      uint64_t phase_nanos[static_cast<size_t>(Phase::kCount)] = {};
      for (size_t i = 0; i + 1 < cuts.size(); ++i) {
        uint64_t lo = cuts[i];
        uint64_t hi = cuts[i + 1];
        Phase best = Phase::kCount;
        for (const Interval& iv : call.intervals) {
          if (iv.lo <= lo && iv.hi >= hi && iv.phase < best) {
            best = iv.phase;
          }
        }
        if (best == Phase::kCount) {
          out.wait_nanos += hi - lo;
        } else {
          phase_nanos[static_cast<size_t>(best)] += hi - lo;
        }
      }
      out.server_exec_nanos =
          phase_nanos[static_cast<size_t>(Phase::kServerExec)];
      out.req_wire_nanos = phase_nanos[static_cast<size_t>(Phase::kReqWire)];
      out.reply_wire_nanos =
          phase_nanos[static_cast<size_t>(Phase::kReplyWire)];
      out.req_prop_nanos = phase_nanos[static_cast<size_t>(Phase::kReqProp)];
      out.reply_prop_nanos =
          phase_nanos[static_cast<size_t>(Phase::kReplyProp)];
      out.queued_nanos = phase_nanos[static_cast<size_t>(Phase::kQueued)];
    }
    analysis.calls.push_back(out);
  }

  // Completions whose submit the ring overwrote used to be invisible (the
  // breakdown loop walks submissions). They cannot be attributed — the
  // span has no anchor — but a 10k-call fleet run truncates long before it
  // finishes, and silently dropping the tail misreports the run. List
  // them, explicitly marked.
  for (auto& [key, call] : calls) {
    if (call.has_submit || !call.has_complete) {
      continue;
    }
    CallBreakdown out;
    out.xid = static_cast<uint32_t>(key);
    out.conn = static_cast<uint32_t>(key >> 32);
    out.status_code = call.status_code;
    out.attempts = call.attempts;
    out.truncated = true;
    ++analysis.truncated_calls;
    analysis.calls.push_back(out);
  }

  // Window occupancy counts calls actually in flight on the transport —
  // from first transmission (the pipelined path queues submissions behind
  // a full window, so submit time would overstate occupancy) until
  // completion. A call that never completed stays counted to the end.
  std::vector<std::pair<uint64_t, int>> edges;  // (time, +1/-1)
  for (const auto& [xid, call] : calls) {
    if (!call.has_tx) {
      continue;
    }
    edges.emplace_back(call.first_tx, 1);
    if (call.has_complete) {
      edges.emplace_back(call.complete, -1);
    }
  }
  std::stable_sort(edges.begin(), edges.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  uint32_t in_flight = 0;
  for (const auto& [at, delta] : edges) {
    in_flight = static_cast<uint32_t>(static_cast<int>(in_flight) + delta);
    analysis.max_in_flight = std::max(analysis.max_in_flight, in_flight);
    analysis.window.push_back({at, in_flight});
  }
  return analysis;
}

namespace {

// Time-weighted mean of a step function per bucket, one character each:
// '.' = zero, '1'..'9', '+' = ten or more. Used for both window occupancy
// and the AIMD cwnd timeline.
std::string StepSparkline(const std::vector<WindowSample>& samples,
                          size_t buckets) {
  if (samples.empty()) {
    return std::string(buckets, '.');
  }
  uint64_t begin = samples.front().at_nanos;
  uint64_t end = samples.back().at_nanos;
  if (end <= begin) {
    return std::string(buckets, '.');
  }
  uint64_t span = end - begin;
  std::string out;
  for (size_t b = 0; b < buckets; ++b) {
    uint64_t lo = begin + span * b / buckets;
    uint64_t hi = begin + span * (b + 1) / buckets;
    if (hi <= lo) {
      hi = lo + 1;
    }
    // Integrate the step function over [lo, hi).
    uint64_t weighted = 0;
    for (size_t i = 0; i < samples.size(); ++i) {
      uint64_t seg_lo = samples[i].at_nanos;
      uint64_t seg_hi = i + 1 < samples.size() ? samples[i + 1].at_nanos
                                               : end;
      weighted += samples[i].in_flight * Overlap(seg_lo, seg_hi, lo, hi);
    }
    uint64_t mean = (weighted + (hi - lo) / 2) / (hi - lo);
    out.push_back(mean == 0 ? '.'
                  : mean > 9 ? '+'
                             : static_cast<char>('0' + mean));
  }
  return out;
}

double Pct(uint64_t part, uint64_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

}  // namespace

std::string RenderReport(const RecordingAnalysis& analysis,
                         size_t max_call_rows) {
  std::string out;
  out += "flexrec report\n";
  out += "==============\n";
  out += StrFormat(
      "calls: %zu submitted, %llu completed (%llu failed), "
      "max in flight %u\n",
      analysis.calls.size(),
      static_cast<unsigned long long>(analysis.completed_calls),
      static_cast<unsigned long long>(analysis.failed_calls),
      analysis.max_in_flight);
  out += StrFormat("virtual span: %.6f s\n",
                   static_cast<double>(analysis.span_nanos) * 1e-9);
  if (analysis.dropped_events > 0) {
    out += StrFormat(
        "WARNING: recording truncated, %llu oldest events dropped\n",
        static_cast<unsigned long long>(analysis.dropped_events));
  }
  if (analysis.truncated_calls > 0) {
    out += StrFormat(
        "WARNING: %llu calls lost their submit to truncation; listed "
        "below, excluded from attribution\n",
        static_cast<unsigned long long>(analysis.truncated_calls));
  }
  out += StrFormat(
      "retransmits: %llu (drop-induced %llu, spurious RTO %llu)\n",
      static_cast<unsigned long long>(analysis.total_retransmits),
      static_cast<unsigned long long>(analysis.drop_induced_retransmits),
      static_cast<unsigned long long>(analysis.spurious_retransmits));

  // Aggregate phase budget over completed calls.
  uint64_t sums[8] = {};
  for (const CallBreakdown& c : analysis.calls) {
    if (!c.complete) {
      continue;
    }
    sums[0] += c.queued_nanos;
    sums[1] += c.req_wire_nanos;
    sums[2] += c.req_prop_nanos;
    sums[3] += c.server_exec_nanos;
    sums[4] += c.reply_wire_nanos;
    sums[5] += c.reply_prop_nanos;
    sums[6] += c.wait_nanos;
    sums[7] += c.total_nanos;
  }
  static constexpr const char* kPhaseLabels[7] = {
      "queued",     "req wire",   "req propagation", "server exec",
      "reply wire", "reply prop", "wait (rto/queue)"};
  out += "\nper-call virtual time, summed over completed calls\n";
  for (int i = 0; i < 7; ++i) {
    out += StrFormat("  %-16s %14.6f s  (%5.1f%%)\n", kPhaseLabels[i],
                     static_cast<double>(sums[i]) * 1e-9,
                     Pct(sums[i], sums[7]));
  }
  out += StrFormat("  %-16s %14.6f s\n", "total",
                   static_cast<double>(sums[7]) * 1e-9);

  out += "\nwindow occupancy ('.'=idle, 1-9 in-flight, '+'=10 or more)\n";
  out += "  [" + StepSparkline(analysis.window, 48) + "]\n";

  // Adaptive transports only: the AIMD window's evolution over the run.
  if (!analysis.cwnd.empty() || analysis.rtt_samples > 0) {
    out += StrFormat(
        "\nadaptive transport: %llu rtt samples, cwnd +%llu/-%llu "
        "(final %u)\n",
        static_cast<unsigned long long>(analysis.rtt_samples),
        static_cast<unsigned long long>(analysis.cwnd_increases),
        static_cast<unsigned long long>(analysis.cwnd_decreases),
        analysis.cwnd.empty() ? 0u : analysis.cwnd.back().in_flight);
    if (analysis.cwnd.size() > 1) {
      out += "cwnd evolution ('.'=n/a, 1-9 window, '+'=10 or more)\n";
      out += "  [" + StepSparkline(analysis.cwnd, 48) + "]\n";
    }
  }

  // Managed bindings only: health transitions and live-rebind activity.
  if (analysis.failover.present) {
    const auto& fo = analysis.failover;
    out += StrFormat(
        "\nfailover (managed binding)\n"
        "  %llu suspects, %llu probes, %llu reinstates, %llu cutovers, "
        "%llu rebinds\n",
        static_cast<unsigned long long>(fo.suspects),
        static_cast<unsigned long long>(fo.probes_sent),
        static_cast<unsigned long long>(fo.reinstates),
        static_cast<unsigned long long>(fo.cutovers),
        static_cast<unsigned long long>(fo.rebinds));
    if (fo.cutover_to_recovery_nanos > 0) {
      out += StrFormat(
          "  first cutover -> next ok completion: %.3f ms\n",
          static_cast<double>(fo.cutover_to_recovery_nanos) * 1e-6);
    }
    if (!fo.per_replica_submits.empty()) {
      out += "  submissions per replica:";
      for (const auto& [tag, count] : fo.per_replica_submits) {
        out += StrFormat(" r%u=%llu", tag,
                         static_cast<unsigned long long>(count));
      }
      out += "\n";
    }
  }

  out += "\nper-call breakdown (microseconds)\n";
  out += StrFormat("  %8s %10s %8s %8s %8s %8s %8s %8s %8s %4s %6s %6s\n",
                   "xid", "total", "queued", "reqwire", "reqprop", "server",
                   "repwire", "repprop", "wait", "att", "rex:dr", "rex:sp");
  size_t rows = 0;
  for (const CallBreakdown& c : analysis.calls) {
    if (rows >= max_call_rows) {
      out += StrFormat("  ... %zu more calls\n",
                       analysis.calls.size() - rows);
      break;
    }
    ++rows;
    // Multiplexed calls render as conn:xid; conn 0 keeps the bare xid so
    // single-connection reports are unchanged.
    std::string id = c.conn != 0 ? StrFormat("%u:%u", c.conn, c.xid)
                                 : StrFormat("%u", c.xid);
    if (c.truncated) {
      out += StrFormat("  %8s %10s (truncated: submit lost)\n", id.c_str(),
                       "-");
      continue;
    }
    if (!c.complete) {
      out += StrFormat("  %8s %10s (never completed)\n", id.c_str(), "-");
      continue;
    }
    auto us = [](uint64_t nanos) {
      return static_cast<double>(nanos) * 1e-3;
    };
    out += StrFormat(
        "  %8s %10.1f %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f %4u "
        "%6u %6u%s\n",
        id.c_str(), us(c.total_nanos), us(c.queued_nanos),
        us(c.req_wire_nanos), us(c.req_prop_nanos), us(c.server_exec_nanos),
        us(c.reply_wire_nanos), us(c.reply_prop_nanos), us(c.wait_nanos),
        c.attempts, c.drop_induced_retransmits, c.spurious_retransmits,
        c.status_code != 0 ? "  FAILED" : "");
  }
  return out;
}

}  // namespace flexrpc
