#include "src/analysis/spec_verifier.h"

#include "src/analysis/flexcheck.h"
#include "src/marshal/engine.h"
#include "src/marshal/layout.h"
#include "src/support/strings.h"

namespace flexrpc {

namespace {

bool IsByteElem(const Type* elem) {
  TypeKind k = elem->Resolve()->kind();
  return k == TypeKind::kOctet || k == TypeKind::kChar;
}

const char* DestName(WireEffect::Dest dest) {
  switch (dest) {
    case WireEffect::Dest::kNone:
      return "wire";
    case WireEffect::Dest::kSlotScalar:
      return "slot-scalar";
    case WireEffect::Dest::kSlotMem:
      return "slot-mem";
    case WireEffect::Dest::kBuffer:
      return "buffer";
    case WireEffect::Dest::kString:
      return "string";
  }
  return "?";
}

const char* LenSourceName(SpecLenSource src) {
  switch (src) {
    case SpecLenSource::kSlotLength:
      return "slot-length";
    case SpecLenSource::kLenSlot:
      return "length-slot";
    case SpecLenSource::kStrLen:
      return "strlen";
  }
  return "?";
}

// Symbolic executor for the interpreted plan: one pass over the item
// stream the engine would walk, lowering each MarshalTop/UnmarshalTop
// case to canonical effects. Engine constructs the superinstruction set
// cannot express lower to kOpaque.
class PlanLowering {
 public:
  PlanLowering(const OpPresentation& pres, bool marshal, bool is_reply)
      : pres_(pres), marshal_(marshal), is_reply_(is_reply) {}

  std::vector<WireEffect> Lower(const std::vector<PlanItemView>& items) {
    for (const PlanItemView& item : items) {
      LowerItem(item);
    }
    return std::move(effects_);
  }

 private:
  int SlotOfName(std::string_view name) const {
    for (size_t i = 0; i < pres_.params.size(); ++i) {
      if (pres_.params[i].name == name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  void Opaque(int slot) {
    WireEffect e;
    e.kind = WireEffect::Kind::kOpaque;
    e.slot = slot;
    effects_.push_back(e);
  }

  void LowerItem(const PlanItemView& item) {
    if (!item.flattened) {
      LowerTop(item.pres, item.type, item.slot);
      return;
    }
    if (item.is_result &&
        item.type->Resolve()->kind() == TypeKind::kUnion) {
      if (item.disc_slot < 0) {
        Opaque(-1);
        return;
      }
      WireEffect e;
      e.kind = WireEffect::Kind::kDisc;
      e.slot = item.disc_slot;
      e.label = item.success_label;
      e.dest = marshal_ ? WireEffect::Dest::kNone
                        : WireEffect::Dest::kSlotScalar;
      effects_.push_back(e);
    }
    for (const PlanFieldView& field : item.fields) {
      if (field.type == nullptr) {
        Opaque(field.slot);
        continue;
      }
      LowerTop(field.pres, field.type, field.slot);
    }
  }

  void LowerTop(const ParamPresentation* pres, const Type* type, int slot) {
    const Type* t = type->Resolve();
    if (marshal_ && is_reply_ && pres != nullptr &&
        pres->dealloc == DeallocPolicy::kAlways) {
      // DeallocAfterMarshal frees this slot inside the interpreter's
      // reply loop — a state effect no SpecProgram performs.
      Opaque(slot);
      return;
    }
    bool special = pres != nullptr && pres->special;
    switch (t->kind()) {
      case TypeKind::kVoid:
        return;
      case TypeKind::kString: {
        WireEffect len;
        len.kind = WireEffect::Kind::kLenPrefix;
        len.slot = slot;
        len.bound = t->bound();
        if (marshal_) {
          len.len_src = SpecLenSource::kStrLen;
          if (pres != nullptr && pres->explicit_length) {
            int ls = SlotOfName(pres->length_param);
            if (ls >= 0) {
              len.len_src = SpecLenSource::kLenSlot;
              len.len_slot = ls;
            }
          }
        }
        effects_.push_back(len);
        WireEffect bytes;
        bytes.kind = WireEffect::Kind::kBytes;
        bytes.slot = slot;
        bytes.special = special;
        if (!marshal_) {
          bytes.dest = WireEffect::Dest::kString;
          bytes.nul_terminated = true;
        }
        effects_.push_back(bytes);
        return;
      }
      case TypeKind::kSequence: {
        if (!IsByteElem(t->element())) {
          Opaque(slot);  // per-element MarshalValue recursion
          return;
        }
        WireEffect len;
        len.kind = WireEffect::Kind::kLenPrefix;
        len.slot = slot;
        len.bound = t->bound();
        if (marshal_) {
          len.len_src = SpecLenSource::kSlotLength;
          if (pres != nullptr && pres->explicit_length) {
            int ls = SlotOfName(pres->length_param);
            if (ls >= 0) {
              len.len_src = SpecLenSource::kLenSlot;
              len.len_slot = ls;
            }
          }
        }
        effects_.push_back(len);
        WireEffect bytes;
        bytes.kind = WireEffect::Kind::kBytes;
        bytes.slot = slot;
        bytes.special = special;
        if (!marshal_) {
          bytes.dest = WireEffect::Dest::kBuffer;
          bytes.may_borrow = true;
        }
        effects_.push_back(bytes);
        return;
      }
      case TypeKind::kArray: {
        if (!marshal_) {
          WireEffect ensure;
          ensure.kind = WireEffect::Kind::kEnsure;
          ensure.slot = slot;
          ensure.count = static_cast<uint32_t>(t->NativeSize());
          effects_.push_back(ensure);
        }
        LowerFixedValue(t, slot, 0, special);
        return;
      }
      case TypeKind::kStruct: {
        if (!marshal_) {
          WireEffect ensure;
          ensure.kind = WireEffect::Kind::kEnsure;
          ensure.slot = slot;
          ensure.count = static_cast<uint32_t>(t->NativeSize());
          effects_.push_back(ensure);
        }
        // MarshalValue/UnmarshalValue recursion ignores [special].
        LowerFixedValue(t, slot, 0, /*special=*/false);
        return;
      }
      case TypeKind::kUnion:
        Opaque(slot);  // runtime arm selection
        return;
      default: {
        unsigned width = WireScalarWidth(t->kind());
        if (width == 0) {
          Opaque(slot);
          return;
        }
        WireEffect e;
        e.kind = WireEffect::Kind::kScalar;
        e.width = static_cast<uint8_t>(width);
        e.slot = slot;
        e.dest = marshal_ ? WireEffect::Dest::kNone
                          : WireEffect::Dest::kSlotScalar;
        effects_.push_back(e);
        return;
      }
    }
  }

  // Mirror of MarshalValue/UnmarshalValue over fixed-wire-size values:
  // recursion to scalar loads/stores and raw byte runs at constant
  // offsets.
  void LowerFixedValue(const Type* type, int slot, uint32_t offset,
                       bool special) {
    const Type* t = type->Resolve();
    switch (t->kind()) {
      case TypeKind::kArray: {
        const Type* elem = t->element();
        if (IsByteElem(elem)) {
          WireEffect e;
          e.kind = WireEffect::Kind::kBytes;
          e.slot = slot;
          e.offset = offset;
          e.count = t->bound();
          e.fixed = true;
          e.special = special;
          if (!marshal_) {
            e.dest = WireEffect::Dest::kSlotMem;
          }
          effects_.push_back(e);
          return;
        }
        size_t stride = elem->NativeSize();
        for (uint32_t i = 0; i < t->bound(); ++i) {
          LowerFixedValue(elem, slot,
                          offset + i * static_cast<uint32_t>(stride),
                          /*special=*/false);
        }
        return;
      }
      case TypeKind::kStruct: {
        for (size_t i = 0; i < t->fields().size(); ++i) {
          LowerFixedValue(
              t->fields()[i].type, slot,
              offset + static_cast<uint32_t>(NativeFieldOffset(t, i)),
              /*special=*/false);
        }
        return;
      }
      case TypeKind::kString:
      case TypeKind::kSequence:
      case TypeKind::kUnion:
      case TypeKind::kVoid:
        Opaque(slot);  // arena-allocating members: not fixed-size
        return;
      default: {
        unsigned width = WireScalarWidth(t->kind());
        if (width == 0) {
          Opaque(slot);
          return;
        }
        WireEffect e;
        e.kind = WireEffect::Kind::kScalar;
        e.width = static_cast<uint8_t>(width);
        e.slot = slot;
        e.offset = offset;
        e.from_memory = true;
        e.dest = marshal_ ? WireEffect::Dest::kNone
                          : WireEffect::Dest::kSlotMem;
        effects_.push_back(e);
        return;
      }
    }
  }

  const OpPresentation& pres_;
  bool marshal_;
  bool is_reply_;
  std::vector<WireEffect> effects_;
};

}  // namespace

std::string WireEffect::ToString() const {
  switch (kind) {
    case Kind::kScalar:
      return StrFormat("scalar(w%u %s slot%d%s dest=%s)", width,
                       from_memory ? "mem" : "reg", slot,
                       from_memory
                           ? StrFormat("+%u", offset).c_str()
                           : "",
                       DestName(dest));
    case Kind::kLenPrefix:
      return StrFormat("len(slot%d src=%s len_slot%d bound=%u)", slot,
                       LenSourceName(len_src), len_slot, bound);
    case Kind::kBytes:
      return StrFormat(
          "bytes(slot%d+%u %s%s%s dest=%s%s%s)", slot, offset,
          fixed ? StrFormat("fixed=%u", count).c_str() : "var",
          special ? " special" : "", may_borrow ? " borrow" : "",
          DestName(dest), nul_terminated ? " nul" : "", "");
    case Kind::kDisc:
      return StrFormat("disc(slot%d label=%u dest=%s)", slot, label,
                       DestName(dest));
    case Kind::kEnsure:
      return StrFormat("ensure(slot%d %u bytes)", slot, count);
    case Kind::kOpaque:
      return StrFormat("opaque(slot%d)", slot);
  }
  return "?";
}

std::vector<WireEffect> PlanStreamEffects(const OperationDecl& op,
                                          const OpPresentation& pres,
                                          SpecStream stream) {
  MarshalProgram program = MarshalProgram::Build(op, pres);
  MarshalPlanView view = program.Plan();
  bool marshal = stream == SpecStream::kMarshalRequest ||
                 stream == SpecStream::kMarshalReply;
  bool is_reply = stream == SpecStream::kMarshalReply ||
                  stream == SpecStream::kUnmarshalReply;
  PlanLowering lowering(pres, marshal, is_reply);
  return lowering.Lower(is_reply ? view.reply : view.request);
}

std::vector<WireEffect> SpecStreamEffects(const SpecProgram& prog) {
  std::vector<WireEffect> effects;
  for (const SpecOp& op : prog.ops) {
    switch (op.kind) {
      case SpecOpKind::kPutScalarSlot:
      case SpecOpKind::kGetScalarSlot: {
        WireEffect e;
        e.kind = WireEffect::Kind::kScalar;
        e.width = op.width;
        e.slot = op.slot;
        e.dest = op.kind == SpecOpKind::kGetScalarSlot
                     ? WireEffect::Dest::kSlotScalar
                     : WireEffect::Dest::kNone;
        effects.push_back(e);
        break;
      }
      case SpecOpKind::kPutScalarMem:
      case SpecOpKind::kGetScalarMem: {
        WireEffect e;
        e.kind = WireEffect::Kind::kScalar;
        e.width = op.width;
        e.slot = op.slot;
        e.offset = op.offset;
        e.from_memory = true;
        e.dest = op.kind == SpecOpKind::kGetScalarMem
                     ? WireEffect::Dest::kSlotMem
                     : WireEffect::Dest::kNone;
        effects.push_back(e);
        break;
      }
      case SpecOpKind::kPutBytesFixed:
      case SpecOpKind::kGetBytesFixed: {
        WireEffect e;
        e.kind = WireEffect::Kind::kBytes;
        e.slot = op.slot;
        e.offset = op.offset;
        e.count = op.count;
        e.fixed = true;
        e.special = op.special;
        e.dest = op.kind == SpecOpKind::kGetBytesFixed
                     ? WireEffect::Dest::kSlotMem
                     : WireEffect::Dest::kNone;
        effects.push_back(e);
        break;
      }
      case SpecOpKind::kPutSeqBytes: {
        WireEffect len;
        len.kind = WireEffect::Kind::kLenPrefix;
        len.slot = op.slot;
        len.len_src = op.len_src;
        len.len_slot = op.len_slot;
        len.bound = op.bound;
        effects.push_back(len);
        WireEffect bytes;
        bytes.kind = WireEffect::Kind::kBytes;
        bytes.slot = op.slot;
        bytes.special = op.special;
        effects.push_back(bytes);
        break;
      }
      case SpecOpKind::kPutString: {
        WireEffect len;
        len.kind = WireEffect::Kind::kLenPrefix;
        len.slot = op.slot;
        len.len_src = op.len_src;
        len.len_slot = op.len_slot;
        len.bound = op.bound;
        effects.push_back(len);
        WireEffect bytes;
        bytes.kind = WireEffect::Kind::kBytes;
        bytes.slot = op.slot;
        bytes.special = op.special;
        effects.push_back(bytes);
        break;
      }
      case SpecOpKind::kGetSeqBytes: {
        WireEffect len;
        len.kind = WireEffect::Kind::kLenPrefix;
        len.slot = op.slot;
        len.bound = op.bound;
        effects.push_back(len);
        WireEffect bytes;
        bytes.kind = WireEffect::Kind::kBytes;
        bytes.slot = op.slot;
        bytes.special = op.special;
        bytes.dest = WireEffect::Dest::kBuffer;
        bytes.may_borrow = true;
        effects.push_back(bytes);
        break;
      }
      case SpecOpKind::kGetString: {
        WireEffect len;
        len.kind = WireEffect::Kind::kLenPrefix;
        len.slot = op.slot;
        len.bound = op.bound;
        effects.push_back(len);
        WireEffect bytes;
        bytes.kind = WireEffect::Kind::kBytes;
        bytes.slot = op.slot;
        bytes.special = op.special;
        bytes.dest = WireEffect::Dest::kString;
        bytes.nul_terminated = true;
        effects.push_back(bytes);
        break;
      }
      case SpecOpKind::kPutUnionDisc:
      case SpecOpKind::kGetUnionDisc: {
        WireEffect e;
        e.kind = WireEffect::Kind::kDisc;
        e.slot = op.slot;
        e.label = op.label;
        e.dest = op.kind == SpecOpKind::kGetUnionDisc
                     ? WireEffect::Dest::kSlotScalar
                     : WireEffect::Dest::kNone;
        effects.push_back(e);
        break;
      }
      case SpecOpKind::kEnsureStorage: {
        WireEffect e;
        e.kind = WireEffect::Kind::kEnsure;
        e.slot = op.slot;
        e.count = op.count;
        effects.push_back(e);
        break;
      }
    }
  }
  return effects;
}

namespace {

// Classifies one effect-pair divergence into its FLEX2xx code.
std::string_view DivergenceCode(const WireEffect& plan,
                                const WireEffect& spec) {
  bool plan_disc = plan.kind == WireEffect::Kind::kDisc;
  bool spec_disc = spec.kind == WireEffect::Kind::kDisc;
  if (plan_disc != spec_disc) {
    return "FLEX207";
  }
  if (plan_disc && spec_disc) {
    return "FLEX207";  // same kind: slot or label diverged
  }
  if (plan.kind != spec.kind) {
    return "FLEX202";
  }
  if (plan.slot != spec.slot || plan.offset != spec.offset ||
      plan.width != spec.width || plan.from_memory != spec.from_memory) {
    return "FLEX203";
  }
  if (plan.len_src != spec.len_src || plan.len_slot != spec.len_slot ||
      plan.bound != spec.bound || plan.count != spec.count ||
      plan.fixed != spec.fixed) {
    return "FLEX204";
  }
  return "FLEX206";  // dest / special / borrow / NUL policy
}

void ReportFlex(std::string_view code, const std::string& file,
                std::string message, DiagnosticSink* diags) {
  const FlexCodeInfo* info = FindFlexCode(code);
  diags->Report(info != nullptr ? info->severity : DiagSeverity::kError,
                std::string(code), file, SourcePos{}, std::move(message));
}

}  // namespace

int VerifySpecPlan(const OperationDecl& op, const OpPresentation& pres,
                   const SpecPlan& spec_plan, const std::string& file,
                   DiagnosticSink* diags) {
  int reported = 0;
  for (size_t s = 0; s < kSpecStreamCount; ++s) {
    if (!spec_plan.has_stream[s]) {
      continue;
    }
    SpecStream stream = static_cast<SpecStream>(s);
    std::vector<WireEffect> plan_fx = PlanStreamEffects(op, pres, stream);
    std::vector<WireEffect> spec_fx =
        SpecStreamEffects(spec_plan.streams[s]);
    std::string where = StrFormat("%s %s", spec_plan.op_name.c_str(),
                                  std::string(SpecStreamName(stream))
                                      .c_str());
    if (plan_fx.size() != spec_fx.size()) {
      ReportFlex("FLEX201", file,
                 StrFormat("%s: interpreted plan performs %zu wire "
                           "effects, specialization performs %zu",
                           where.c_str(), plan_fx.size(), spec_fx.size()),
                 diags);
      ++reported;
      continue;
    }
    for (size_t i = 0; i < plan_fx.size(); ++i) {
      if (plan_fx[i] == spec_fx[i]) {
        continue;
      }
      ReportFlex(DivergenceCode(plan_fx[i], spec_fx[i]), file,
                 StrFormat("%s: effect %zu diverges: plan %s vs "
                           "specialization %s",
                           where.c_str(), i,
                           plan_fx[i].ToString().c_str(),
                           spec_fx[i].ToString().c_str()),
                 diags);
      ++reported;
    }
  }
  return reported;
}

int ReportUnspecializedStreams(const SpecPlan& spec_plan,
                               const std::string& file,
                               DiagnosticSink* diags) {
  int reported = 0;
  for (size_t s = 0; s < kSpecStreamCount; ++s) {
    if (spec_plan.has_stream[s] || spec_plan.rejection[s].empty()) {
      continue;
    }
    ReportFlex("FLEX205", file,
               StrFormat("%s %s: %s", spec_plan.op_name.c_str(),
                         std::string(SpecStreamName(
                                         static_cast<SpecStream>(s)))
                             .c_str(),
                         spec_plan.rejection[s].c_str()),
               diags);
    ++reported;
  }
  return reported;
}

}  // namespace flexrpc
