#include "src/marshal/native.h"

#include <cstring>

namespace flexrpc {

void NativeWriter::Append(const void* src, size_t n) {
  const auto* p = static_cast<const uint8_t*>(src);
  buffer_.insert(buffer_.end(), p, p + n);
}

template <typename T>
Result<T> NativeReader::Read() {
  if (remaining() < sizeof(T)) {
    return DataLossError("native stream truncated reading scalar");
  }
  T v;
  std::memcpy(&v, data_.data() + pos_, sizeof(T));
  pos_ += sizeof(T);
  return v;
}

template Result<uint8_t> NativeReader::Read<uint8_t>();
template Result<uint16_t> NativeReader::Read<uint16_t>();
template Result<uint32_t> NativeReader::Read<uint32_t>();
template Result<uint64_t> NativeReader::Read<uint64_t>();

Result<const uint8_t*> NativeReader::GetBytes(size_t n) {
  if (remaining() < n) {
    return DataLossError("native stream truncated reading bytes");
  }
  const uint8_t* p = data_.data() + pos_;
  pos_ += n;
  return p;
}

}  // namespace flexrpc
