// XDR (RFC 1014) wire format, as used by Sun RPC.
//
// Every item occupies a multiple of 4 bytes; integers are big-endian;
// 8/16-bit scalars are widened to 32 bits; opaque byte runs are padded
// with zeros to the next 4-byte boundary.

#ifndef FLEXRPC_SRC_MARSHAL_XDR_H_
#define FLEXRPC_SRC_MARSHAL_XDR_H_

#include "src/marshal/format.h"

namespace flexrpc {

class XdrWriter final : public WireWriter {
 public:
  void PutU8(uint8_t v) override { PutU32(v); }
  void PutU16(uint16_t v) override { PutU32(v); }
  void PutU32(uint32_t v) override;
  void PutU64(uint64_t v) override;
  void PutBytes(const void* src, size_t n) override;
  uint8_t* ReserveBytes(size_t n) override;
  size_t size() const override { return buffer_.size(); }
  ByteSpan span() const override {
    return ByteSpan(buffer_.data(), buffer_.size());
  }
  void Clear() override { buffer_.clear(); }

 private:
  std::vector<uint8_t> buffer_;
};

class XdrReader final : public WireReader {
 public:
  explicit XdrReader(ByteSpan data) : data_(data) {}

  Result<uint8_t> GetU8() override {
    FLEXRPC_ASSIGN_OR_RETURN(uint32_t v, GetU32());
    return static_cast<uint8_t>(v);
  }
  Result<uint16_t> GetU16() override {
    FLEXRPC_ASSIGN_OR_RETURN(uint32_t v, GetU32());
    return static_cast<uint16_t>(v);
  }
  Result<uint32_t> GetU32() override;
  Result<uint64_t> GetU64() override;
  Result<const uint8_t*> GetBytes(size_t n) override;
  size_t remaining() const override { return data_.size() - pos_; }

 private:
  ByteSpan data_;
  size_t pos_ = 0;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_MARSHAL_XDR_H_
