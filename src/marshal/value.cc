#include "src/marshal/value.h"

#include <cstring>

#include "src/marshal/layout.h"
#include "src/support/strings.h"

namespace flexrpc {

namespace {

// Finds the arm matching `disc` (exact label first, then default).
const UnionArm* SelectArm(const Type* u, uint32_t disc) {
  const UnionArm* fallback = nullptr;
  for (const UnionArm& arm : u->arms()) {
    if (arm.is_default) {
      fallback = &arm;
    } else if (arm.label == disc) {
      return &arm;
    }
  }
  return fallback;
}

bool IsByteElem(const Type* elem) {
  TypeKind k = elem->Resolve()->kind();
  return k == TypeKind::kOctet || k == TypeKind::kChar;
}

}  // namespace

void PutScalarWire(WireWriter* w, const Type* type, uint64_t bits) {
  switch (type->Resolve()->kind()) {
    case TypeKind::kBool:
    case TypeKind::kOctet:
    case TypeKind::kChar:
      w->PutU8(static_cast<uint8_t>(bits));
      return;
    case TypeKind::kI16:
    case TypeKind::kU16:
      w->PutU16(static_cast<uint16_t>(bits));
      return;
    case TypeKind::kI32:
    case TypeKind::kU32:
    case TypeKind::kF32:
    case TypeKind::kEnum:
      w->PutU32(static_cast<uint32_t>(bits));
      return;
    case TypeKind::kI64:
    case TypeKind::kU64:
    case TypeKind::kF64:
    case TypeKind::kObjRef:
      w->PutU64(bits);
      return;
    default:
      return;
  }
}

Result<uint64_t> GetScalarWire(WireReader* r, const Type* type) {
  switch (type->Resolve()->kind()) {
    case TypeKind::kBool:
    case TypeKind::kOctet:
    case TypeKind::kChar: {
      FLEXRPC_ASSIGN_OR_RETURN(uint8_t v, r->GetU8());
      return static_cast<uint64_t>(v);
    }
    case TypeKind::kI16:
    case TypeKind::kU16: {
      FLEXRPC_ASSIGN_OR_RETURN(uint16_t v, r->GetU16());
      return static_cast<uint64_t>(v);
    }
    case TypeKind::kI32:
    case TypeKind::kU32:
    case TypeKind::kF32:
    case TypeKind::kEnum: {
      FLEXRPC_ASSIGN_OR_RETURN(uint32_t v, r->GetU32());
      return static_cast<uint64_t>(v);
    }
    case TypeKind::kI64:
    case TypeKind::kU64:
    case TypeKind::kF64:
    case TypeKind::kObjRef:
      return r->GetU64();
    default:
      return InternalError("GetScalarWire on non-scalar type");
  }
}

Status MarshalValue(WireWriter* w, const Type* type, const void* src) {
  const Type* t = type->Resolve();
  switch (t->kind()) {
    case TypeKind::kVoid:
      return Status::Ok();
    case TypeKind::kString: {
      const char* s;
      std::memcpy(&s, src, sizeof(s));
      size_t len = s == nullptr ? 0 : std::strlen(s);
      if (t->bound() != 0 && len > t->bound()) {
        return InvalidArgumentError(
            StrFormat("string length %zu exceeds bound %u", len, t->bound()));
      }
      w->PutU32(static_cast<uint32_t>(len));
      w->PutBytes(s, len);
      return Status::Ok();
    }
    case TypeKind::kSequence: {
      SeqRep rep;
      std::memcpy(&rep, src, sizeof(rep));
      if (t->bound() != 0 && rep.length > t->bound()) {
        return InvalidArgumentError(
            StrFormat("sequence length %u exceeds bound %u", rep.length,
                      t->bound()));
      }
      w->PutU32(rep.length);
      const Type* elem = t->element();
      if (IsByteElem(elem)) {
        w->PutBytes(rep.buffer, rep.length);
        return Status::Ok();
      }
      size_t stride = elem->NativeSize();
      const auto* base = static_cast<const uint8_t*>(rep.buffer);
      for (uint32_t i = 0; i < rep.length; ++i) {
        FLEXRPC_RETURN_IF_ERROR(MarshalValue(w, elem, base + i * stride));
      }
      return Status::Ok();
    }
    case TypeKind::kArray: {
      const Type* elem = t->element();
      if (IsByteElem(elem)) {
        w->PutBytes(src, t->bound());
        return Status::Ok();
      }
      size_t stride = elem->NativeSize();
      const auto* base = static_cast<const uint8_t*>(src);
      for (uint32_t i = 0; i < t->bound(); ++i) {
        FLEXRPC_RETURN_IF_ERROR(MarshalValue(w, elem, base + i * stride));
      }
      return Status::Ok();
    }
    case TypeKind::kStruct: {
      const auto* base = static_cast<const uint8_t*>(src);
      for (size_t i = 0; i < t->fields().size(); ++i) {
        FLEXRPC_RETURN_IF_ERROR(MarshalValue(
            w, t->fields()[i].type, base + NativeFieldOffset(t, i)));
      }
      return Status::Ok();
    }
    case TypeKind::kUnion: {
      uint32_t disc;
      std::memcpy(&disc, src, sizeof(disc));
      const UnionArm* arm = SelectArm(t, disc);
      if (arm == nullptr) {
        return InvalidArgumentError(
            StrFormat("union discriminant %u matches no arm", disc));
      }
      w->PutU32(disc);
      if (arm->type->Resolve()->kind() == TypeKind::kVoid) {
        return Status::Ok();
      }
      const auto* base = static_cast<const uint8_t*>(src);
      return MarshalValue(w, arm->type, base + UnionPayloadOffset(t));
    }
    default:
      PutScalarWire(w, t, LoadScalar(t, src));
      return Status::Ok();
  }
}

Status UnmarshalValue(WireReader* r, const Type* type, void* dst,
                      Arena* arena) {
  const Type* t = type->Resolve();
  switch (t->kind()) {
    case TypeKind::kVoid:
      return Status::Ok();
    case TypeKind::kString: {
      FLEXRPC_ASSIGN_OR_RETURN(uint32_t len, r->GetU32());
      if (t->bound() != 0 && len > t->bound()) {
        return DataLossError(
            StrFormat("wire string length %u exceeds bound %u", len,
                      t->bound()));
      }
      FLEXRPC_ASSIGN_OR_RETURN(const uint8_t* bytes, r->GetBytes(len));
      char* s = static_cast<char*>(arena->AllocateBlock(len + 1));
      std::memcpy(s, bytes, len);
      s[len] = '\0';
      std::memcpy(dst, &s, sizeof(s));
      return Status::Ok();
    }
    case TypeKind::kSequence: {
      FLEXRPC_ASSIGN_OR_RETURN(uint32_t len, r->GetU32());
      if (t->bound() != 0 && len > t->bound()) {
        return DataLossError(
            StrFormat("wire sequence length %u exceeds bound %u", len,
                      t->bound()));
      }
      const Type* elem = t->element();
      SeqRep rep;
      rep.maximum = len;
      rep.length = len;
      if (IsByteElem(elem)) {
        FLEXRPC_ASSIGN_OR_RETURN(const uint8_t* bytes, r->GetBytes(len));
        rep.buffer = arena->AllocateBlock(len > 0 ? len : 1);
        std::memcpy(rep.buffer, bytes, len);
      } else {
        size_t stride = elem->NativeSize();
        rep.buffer = arena->AllocateBlock(len > 0 ? len * stride : 1);
        auto* base = static_cast<uint8_t*>(rep.buffer);
        for (uint32_t i = 0; i < len; ++i) {
          Status st = UnmarshalValue(r, elem, base + i * stride, arena);
          if (!st.ok()) {
            arena->FreeBlock(rep.buffer);
            return st;
          }
        }
      }
      std::memcpy(dst, &rep, sizeof(rep));
      return Status::Ok();
    }
    case TypeKind::kArray: {
      const Type* elem = t->element();
      if (IsByteElem(elem)) {
        FLEXRPC_ASSIGN_OR_RETURN(const uint8_t* bytes,
                                 r->GetBytes(t->bound()));
        std::memcpy(dst, bytes, t->bound());
        return Status::Ok();
      }
      size_t stride = elem->NativeSize();
      auto* base = static_cast<uint8_t*>(dst);
      for (uint32_t i = 0; i < t->bound(); ++i) {
        FLEXRPC_RETURN_IF_ERROR(
            UnmarshalValue(r, elem, base + i * stride, arena));
      }
      return Status::Ok();
    }
    case TypeKind::kStruct: {
      auto* base = static_cast<uint8_t*>(dst);
      for (size_t i = 0; i < t->fields().size(); ++i) {
        FLEXRPC_RETURN_IF_ERROR(UnmarshalValue(
            r, t->fields()[i].type, base + NativeFieldOffset(t, i), arena));
      }
      return Status::Ok();
    }
    case TypeKind::kUnion: {
      FLEXRPC_ASSIGN_OR_RETURN(uint32_t disc, r->GetU32());
      const UnionArm* arm = SelectArm(t, disc);
      if (arm == nullptr) {
        return DataLossError(
            StrFormat("wire union discriminant %u matches no arm", disc));
      }
      std::memcpy(dst, &disc, sizeof(disc));
      if (arm->type->Resolve()->kind() == TypeKind::kVoid) {
        return Status::Ok();
      }
      auto* base = static_cast<uint8_t*>(dst);
      return UnmarshalValue(r, arm->type, base + UnionPayloadOffset(t),
                            arena);
    }
    default: {
      FLEXRPC_ASSIGN_OR_RETURN(uint64_t bits, GetScalarWire(r, t));
      StoreScalar(t, dst, bits);
      return Status::Ok();
    }
  }
}

void FreeValue(Arena* arena, const Type* type, void* native) {
  const Type* t = type->Resolve();
  switch (t->kind()) {
    case TypeKind::kString: {
      char* s;
      std::memcpy(&s, native, sizeof(s));
      arena->FreeBlock(s);
      return;
    }
    case TypeKind::kSequence: {
      SeqRep rep;
      std::memcpy(&rep, native, sizeof(rep));
      const Type* elem = t->element();
      if (!IsByteElem(elem) && !IsScalarKind(elem->Resolve()->kind())) {
        size_t stride = elem->NativeSize();
        auto* base = static_cast<uint8_t*>(rep.buffer);
        for (uint32_t i = 0; i < rep.length; ++i) {
          FreeValue(arena, elem, base + i * stride);
        }
      }
      arena->FreeBlock(rep.buffer);
      return;
    }
    case TypeKind::kArray: {
      const Type* elem = t->element();
      if (IsByteElem(elem) || IsScalarKind(elem->Resolve()->kind())) {
        return;
      }
      size_t stride = elem->NativeSize();
      auto* base = static_cast<uint8_t*>(native);
      for (uint32_t i = 0; i < t->bound(); ++i) {
        FreeValue(arena, elem, base + i * stride);
      }
      return;
    }
    case TypeKind::kStruct: {
      auto* base = static_cast<uint8_t*>(native);
      for (size_t i = 0; i < t->fields().size(); ++i) {
        FreeValue(arena, t->fields()[i].type,
                  base + NativeFieldOffset(t, i));
      }
      return;
    }
    case TypeKind::kUnion: {
      uint32_t disc;
      std::memcpy(&disc, native, sizeof(disc));
      const UnionArm* arm = SelectArm(t, disc);
      if (arm == nullptr || arm->type->Resolve()->kind() == TypeKind::kVoid) {
        return;
      }
      auto* base = static_cast<uint8_t*>(native);
      FreeValue(arena, arm->type, base + UnionPayloadOffset(t));
      return;
    }
    default:
      return;  // scalars own no storage
  }
}

bool ValueEquals(const Type* type, const void* a, const void* b) {
  const Type* t = type->Resolve();
  switch (t->kind()) {
    case TypeKind::kVoid:
      return true;
    case TypeKind::kString: {
      const char* sa;
      const char* sb;
      std::memcpy(&sa, a, sizeof(sa));
      std::memcpy(&sb, b, sizeof(sb));
      if (sa == nullptr || sb == nullptr) {
        return sa == sb;
      }
      return std::strcmp(sa, sb) == 0;
    }
    case TypeKind::kSequence: {
      SeqRep ra;
      SeqRep rb;
      std::memcpy(&ra, a, sizeof(ra));
      std::memcpy(&rb, b, sizeof(rb));
      if (ra.length != rb.length) {
        return false;
      }
      const Type* elem = t->element();
      if (IsByteElem(elem)) {
        return std::memcmp(ra.buffer, rb.buffer, ra.length) == 0;
      }
      size_t stride = elem->NativeSize();
      const auto* ba = static_cast<const uint8_t*>(ra.buffer);
      const auto* bb = static_cast<const uint8_t*>(rb.buffer);
      for (uint32_t i = 0; i < ra.length; ++i) {
        if (!ValueEquals(elem, ba + i * stride, bb + i * stride)) {
          return false;
        }
      }
      return true;
    }
    case TypeKind::kArray: {
      const Type* elem = t->element();
      if (IsByteElem(elem)) {
        return std::memcmp(a, b, t->bound()) == 0;
      }
      size_t stride = elem->NativeSize();
      const auto* ba = static_cast<const uint8_t*>(a);
      const auto* bb = static_cast<const uint8_t*>(b);
      for (uint32_t i = 0; i < t->bound(); ++i) {
        if (!ValueEquals(elem, ba + i * stride, bb + i * stride)) {
          return false;
        }
      }
      return true;
    }
    case TypeKind::kStruct: {
      const auto* ba = static_cast<const uint8_t*>(a);
      const auto* bb = static_cast<const uint8_t*>(b);
      for (size_t i = 0; i < t->fields().size(); ++i) {
        size_t off = NativeFieldOffset(t, i);
        if (!ValueEquals(t->fields()[i].type, ba + off, bb + off)) {
          return false;
        }
      }
      return true;
    }
    case TypeKind::kUnion: {
      uint32_t da;
      uint32_t db;
      std::memcpy(&da, a, sizeof(da));
      std::memcpy(&db, b, sizeof(db));
      if (da != db) {
        return false;
      }
      const UnionArm* arm = SelectArm(t, da);
      if (arm == nullptr || arm->type->Resolve()->kind() == TypeKind::kVoid) {
        return true;
      }
      size_t off = UnionPayloadOffset(t);
      return ValueEquals(arm->type,
                         static_cast<const uint8_t*>(a) + off,
                         static_cast<const uint8_t*>(b) + off);
    }
    default:
      return LoadScalar(t, a) == LoadScalar(t, b);
  }
}

Status CopyValue(Arena* arena, const Type* type, const void* src, void* dst) {
  const Type* t = type->Resolve();
  switch (t->kind()) {
    case TypeKind::kVoid:
      return Status::Ok();
    case TypeKind::kString: {
      const char* s;
      std::memcpy(&s, src, sizeof(s));
      char* copy = nullptr;
      if (s != nullptr) {
        size_t len = std::strlen(s);
        copy = static_cast<char*>(arena->AllocateBlock(len + 1));
        std::memcpy(copy, s, len + 1);
      }
      std::memcpy(dst, &copy, sizeof(copy));
      return Status::Ok();
    }
    case TypeKind::kSequence: {
      SeqRep rep;
      std::memcpy(&rep, src, sizeof(rep));
      const Type* elem = t->element();
      SeqRep out;
      out.maximum = rep.length;
      out.length = rep.length;
      size_t stride = IsByteElem(elem) ? 1 : elem->NativeSize();
      size_t bytes = rep.length * stride;
      out.buffer = arena->AllocateBlock(bytes > 0 ? bytes : 1);
      if (IsByteElem(elem) || IsScalarKind(elem->Resolve()->kind())) {
        std::memcpy(out.buffer, rep.buffer, bytes);
      } else {
        const auto* sb = static_cast<const uint8_t*>(rep.buffer);
        auto* db = static_cast<uint8_t*>(out.buffer);
        for (uint32_t i = 0; i < rep.length; ++i) {
          FLEXRPC_RETURN_IF_ERROR(
              CopyValue(arena, elem, sb + i * stride, db + i * stride));
        }
      }
      std::memcpy(dst, &out, sizeof(out));
      return Status::Ok();
    }
    case TypeKind::kArray:
    case TypeKind::kStruct:
    case TypeKind::kUnion: {
      // Copy the fixed-size shell, then fix up nested allocations.
      std::memcpy(dst, src, t->NativeSize());
      if (t->kind() == TypeKind::kStruct) {
        auto* base = static_cast<uint8_t*>(dst);
        const auto* sbase = static_cast<const uint8_t*>(src);
        for (size_t i = 0; i < t->fields().size(); ++i) {
          const Type* ft = t->fields()[i].type->Resolve();
          if (ft->kind() == TypeKind::kString ||
              ft->kind() == TypeKind::kSequence ||
              ft->kind() == TypeKind::kStruct ||
              ft->kind() == TypeKind::kUnion ||
              ft->kind() == TypeKind::kArray) {
            size_t off = NativeFieldOffset(t, i);
            FLEXRPC_RETURN_IF_ERROR(
                CopyValue(arena, ft, sbase + off, base + off));
          }
        }
      } else if (t->kind() == TypeKind::kUnion) {
        uint32_t disc;
        std::memcpy(&disc, src, sizeof(disc));
        const UnionArm* arm = SelectArm(t, disc);
        if (arm != nullptr &&
            arm->type->Resolve()->kind() != TypeKind::kVoid) {
          size_t off = UnionPayloadOffset(t);
          FLEXRPC_RETURN_IF_ERROR(
              CopyValue(arena, arm->type,
                        static_cast<const uint8_t*>(src) + off,
                        static_cast<uint8_t*>(dst) + off));
        }
      } else {
        const Type* elem = t->element();
        if (!IsByteElem(elem) && !IsScalarKind(elem->Resolve()->kind())) {
          size_t stride = elem->NativeSize();
          const auto* sb = static_cast<const uint8_t*>(src);
          auto* db = static_cast<uint8_t*>(dst);
          for (uint32_t i = 0; i < t->bound(); ++i) {
            FLEXRPC_RETURN_IF_ERROR(
                CopyValue(arena, elem, sb + i * stride, db + i * stride));
          }
        }
      }
      return Status::Ok();
    }
    default:
      std::memcpy(dst, src, t->NativeSize());
      return Status::Ok();
  }
}

}  // namespace flexrpc
