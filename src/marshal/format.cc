#include "src/marshal/format.h"

#include <cstring>

namespace flexrpc {

void WireWriter::PutF32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits);
}

void WireWriter::PutF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

Result<float> WireReader::GetF32() {
  FLEXRPC_ASSIGN_OR_RETURN(uint32_t bits, GetU32());
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<double> WireReader::GetF64() {
  FLEXRPC_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace flexrpc
