#include "src/marshal/spec.h"

#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "src/marshal/layout.h"
#include "src/support/strings.h"

namespace flexrpc {

namespace {

// ---- FNV-1a hashing of the structural plan identity ------------------------

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

struct Hasher {
  uint64_t h = kFnvOffset;

  void U8(uint8_t v) {
    h ^= v;
    h *= kFnvPrime;
  }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      U8(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
};

// Structural wire hash of a type: kinds, bounds, field/arm shapes — never
// names, which do not affect the bytes. Aliases hash as their targets.
void HashType(Hasher* h, const Type* type, int depth) {
  const Type* t = type->Resolve();
  h->U8(static_cast<uint8_t>(t->kind()));
  if (depth > 32) {
    return;  // depth fuse; seed IDLs are nowhere near this
  }
  switch (t->kind()) {
    case TypeKind::kString:
      h->U32(t->bound());
      return;
    case TypeKind::kSequence:
    case TypeKind::kArray:
      h->U32(t->bound());
      HashType(h, t->element(), depth + 1);
      return;
    case TypeKind::kStruct:
      h->U32(static_cast<uint32_t>(t->fields().size()));
      for (const StructField& f : t->fields()) {
        HashType(h, f.type, depth + 1);
      }
      return;
    case TypeKind::kUnion:
      HashType(h, t->discriminant(), depth + 1);
      h->U32(static_cast<uint32_t>(t->arms().size()));
      for (const UnionArm& arm : t->arms()) {
        h->U32(arm.label);
        h->U8(arm.is_default ? 1 : 0);
        HashType(h, arm.type, depth + 1);
      }
      return;
    default:
      return;  // scalar kinds: the kind byte is the whole story
  }
}

// Slot index of the named presentation parameter, -1 if absent — the same
// resolution MarshalProgram::SlotOf performs at run time.
int SlotOfName(const OpPresentation& pres, std::string_view name) {
  for (size_t i = 0; i < pres.params.size(); ++i) {
    if (pres.params[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void HashParamPresentation(Hasher* h, const OpPresentation& pres,
                           const ParamPresentation& p) {
  h->U8(static_cast<uint8_t>(p.binding.kind));
  h->U32(static_cast<uint32_t>(p.binding.param_index + 1));
  h->U32(static_cast<uint32_t>(p.binding.field_index + 1));
  h->U8(p.explicit_length ? 1 : 0);
  h->U32(static_cast<uint32_t>(
      (p.explicit_length ? SlotOfName(pres, p.length_param) : -1) + 1));
  h->U8(p.special ? 1 : 0);
  h->U8(p.trashable ? 1 : 0);
  h->U8(p.preserved ? 1 : 0);
  h->U8(p.nonunique ? 1 : 0);
  h->U8(static_cast<uint8_t>(p.alloc));
  h->U8(static_cast<uint8_t>(p.dealloc));
  h->U8(p.presentation_only ? 1 : 0);
}

}  // namespace

SpecKey ComputeSpecKey(const OperationDecl& op, const OpPresentation& pres) {
  SpecKey key;
  {
    Hasher h;
    h.U8('O');
    h.U8(op.oneway ? 1 : 0);
    h.U32(static_cast<uint32_t>(op.params.size()));
    for (const ParamDecl& p : op.params) {
      h.U8(static_cast<uint8_t>(p.dir));
      HashType(&h, p.type, 0);
    }
    HashType(&h, op.result, 0);
    key.op_hash = h.h;
  }
  {
    Hasher h;
    h.U8('P');
    h.U8(pres.args_flattened ? 1 : 0);
    h.U8(pres.result_flattened ? 1 : 0);
    h.U8(pres.comm_status ? 1 : 0);
    h.U32(static_cast<uint32_t>(pres.params.size()));
    for (const ParamPresentation& p : pres.params) {
      HashParamPresentation(&h, pres, p);
    }
    HashParamPresentation(&h, pres, pres.result);
    key.pres_hash = h.h;
  }
  return key;
}

unsigned WireScalarWidth(TypeKind kind) {
  switch (kind) {
    case TypeKind::kBool:
    case TypeKind::kOctet:
    case TypeKind::kChar:
      return 1;
    case TypeKind::kI16:
    case TypeKind::kU16:
      return 2;
    case TypeKind::kI32:
    case TypeKind::kU32:
    case TypeKind::kF32:
    case TypeKind::kEnum:
      return 4;
    case TypeKind::kI64:
    case TypeKind::kU64:
    case TypeKind::kF64:
    case TypeKind::kObjRef:
      return 8;
    default:
      return 0;
  }
}

std::string_view SpecStreamName(SpecStream stream) {
  switch (stream) {
    case SpecStream::kMarshalRequest:
      return "marshal_request";
    case SpecStream::kUnmarshalRequest:
      return "unmarshal_request";
    case SpecStream::kMarshalReply:
      return "marshal_reply";
    case SpecStream::kUnmarshalReply:
      return "unmarshal_reply";
  }
  return "?";
}

std::string_view SpecOpKindName(SpecOpKind kind) {
  switch (kind) {
    case SpecOpKind::kPutScalarSlot:
      return "put_scalar_slot";
    case SpecOpKind::kPutScalarMem:
      return "put_scalar_mem";
    case SpecOpKind::kPutBytesFixed:
      return "put_bytes_fixed";
    case SpecOpKind::kPutSeqBytes:
      return "put_seq_bytes";
    case SpecOpKind::kPutString:
      return "put_string";
    case SpecOpKind::kPutUnionDisc:
      return "put_union_disc";
    case SpecOpKind::kGetScalarSlot:
      return "get_scalar_slot";
    case SpecOpKind::kGetScalarMem:
      return "get_scalar_mem";
    case SpecOpKind::kGetBytesFixed:
      return "get_bytes_fixed";
    case SpecOpKind::kGetSeqBytes:
      return "get_seq_bytes";
    case SpecOpKind::kGetString:
      return "get_string";
    case SpecOpKind::kGetUnionDisc:
      return "get_union_disc";
    case SpecOpKind::kEnsureStorage:
      return "ensure_storage";
  }
  return "?";
}

namespace {

bool IsByteElem(const Type* elem) {
  TypeKind k = elem->Resolve()->kind();
  return k == TypeKind::kOctet || k == TypeKind::kChar;
}

// Straight-line budget: a stream longer than this stops being a
// superinstruction and goes back to the interpreter.
constexpr size_t kMaxSpecOps = 192;

// Compiles one of the four streams of a plan into SpecOps. Mirrors the
// exact decision structure of MarshalProgram::MarshalItem/UnmarshalItem —
// every construct it cannot express as a constant-operand op rejects the
// stream (it keeps the interpreter; nothing is ever approximated).
class StreamCompiler {
 public:
  StreamCompiler(const OpPresentation& pres, bool marshal, bool is_reply)
      : pres_(pres), marshal_(marshal), is_reply_(is_reply) {}

  bool Compile(const std::vector<PlanItemView>& items) {
    for (const PlanItemView& item : items) {
      if (!AddItem(item)) {
        return false;
      }
    }
    return ops_.size() <= kMaxSpecOps ||
           Reject("superinstruction budget exceeded");
  }

  std::vector<SpecOp> TakeOps() { return std::move(ops_); }
  const std::string& reason() const { return reason_; }

 private:
  bool Reject(std::string why) {
    if (reason_.empty()) {
      reason_ = std::move(why);
    }
    return false;
  }

  void Emit(SpecOp op) { ops_.push_back(op); }

  bool AddItem(const PlanItemView& item) {
    if (!item.flattened) {
      return AddTop(item.pres, item.type, item.slot);
    }
    const Type* resolved = item.type->Resolve();
    if (item.is_result && resolved->kind() == TypeKind::kUnion) {
      if (item.disc_slot < 0) {
        return Reject("flattened union result lacks a discriminant slot");
      }
      SpecOp op;
      op.kind = marshal_ ? SpecOpKind::kPutUnionDisc
                         : SpecOpKind::kGetUnionDisc;
      op.slot = item.disc_slot;
      op.label = item.success_label;
      Emit(op);
    }
    for (const PlanFieldView& field : item.fields) {
      if (field.type == nullptr) {
        return Reject("flattened item has an unbound field");
      }
      if (!AddTop(field.pres, field.type, field.slot)) {
        return false;
      }
    }
    return true;
  }

  // One top-level wire value with its own presentation — the unit
  // MarshalTop/UnmarshalTop handles.
  bool AddTop(const ParamPresentation* pres, const Type* type, int slot) {
    const Type* t = type->Resolve();
    if (marshal_ && is_reply_ && pres != nullptr &&
        pres->dealloc == DeallocPolicy::kAlways) {
      // The interpreter's reply epilogue frees donated buffers
      // (DeallocAfterMarshal); that side effect is not in the
      // superinstruction vocabulary.
      return Reject("dealloc(always) requires the interpreter epilogue");
    }
    bool special = pres != nullptr && pres->special;
    switch (t->kind()) {
      case TypeKind::kVoid:
        return true;
      case TypeKind::kString: {
        SpecOp op;
        op.slot = slot;
        op.bound = t->bound();
        op.special = special;
        if (marshal_) {
          op.kind = SpecOpKind::kPutString;
          op.len_src = SpecLenSource::kStrLen;
          if (pres != nullptr && pres->explicit_length) {
            int len_slot = SlotOfName(pres_, pres->length_param);
            if (len_slot >= 0) {
              op.len_src = SpecLenSource::kLenSlot;
              op.len_slot = len_slot;
            }
          }
        } else {
          op.kind = SpecOpKind::kGetString;
        }
        Emit(op);
        return true;
      }
      case TypeKind::kSequence: {
        if (!IsByteElem(t->element())) {
          return Reject("sequence of non-byte elements");
        }
        SpecOp op;
        op.slot = slot;
        op.bound = t->bound();
        op.special = special;
        if (marshal_) {
          op.kind = SpecOpKind::kPutSeqBytes;
          op.len_src = SpecLenSource::kSlotLength;
          if (pres != nullptr && pres->explicit_length) {
            int len_slot = SlotOfName(pres_, pres->length_param);
            if (len_slot >= 0) {
              op.len_src = SpecLenSource::kLenSlot;
              op.len_slot = len_slot;
            }
          }
        } else {
          op.kind = SpecOpKind::kGetSeqBytes;
        }
        Emit(op);
        return true;
      }
      case TypeKind::kArray: {
        if (!marshal_) {
          SpecOp ensure;
          ensure.kind = SpecOpKind::kEnsureStorage;
          ensure.slot = slot;
          ensure.count = static_cast<uint32_t>(t->NativeSize());
          Emit(ensure);
        }
        return AddFixedValue(t, slot, 0, special);
      }
      case TypeKind::kStruct: {
        if (!marshal_) {
          SpecOp ensure;
          ensure.kind = SpecOpKind::kEnsureStorage;
          ensure.slot = slot;
          ensure.count = static_cast<uint32_t>(t->NativeSize());
          Emit(ensure);
        }
        // The interpreter hands structs to MarshalValue/UnmarshalValue,
        // which never consult [special] — nested byte runs stay plain.
        return AddFixedValue(t, slot, 0, /*special=*/false);
      }
      case TypeKind::kUnion:
        return Reject("direct union slot needs arm selection at run time");
      default: {
        unsigned width = WireScalarWidth(t->kind());
        if (width == 0) {
          return Reject(StrFormat("unsupported type kind %s",
                                  std::string(TypeKindName(t->kind()))
                                      .c_str()));
        }
        SpecOp op;
        op.kind = marshal_ ? SpecOpKind::kPutScalarSlot
                           : SpecOpKind::kGetScalarSlot;
        op.width = static_cast<uint8_t>(width);
        op.slot = slot;
        Emit(op);
        return true;
      }
    }
  }

  // A fixed-wire-size value living in native memory at slot.ptr()+offset:
  // scalars, byte arrays, scalar arrays, and structs thereof — the subset
  // MarshalValue/UnmarshalValue handle without arena allocation, unrolled
  // to constant offsets. `special` applies only to the outermost byte run
  // of a top-level array (the one place the interpreter routes [special]).
  bool AddFixedValue(const Type* type, int slot, uint32_t offset,
                     bool special) {
    const Type* t = type->Resolve();
    switch (t->kind()) {
      case TypeKind::kArray: {
        const Type* elem = t->element();
        if (IsByteElem(elem)) {
          SpecOp op;
          op.kind = marshal_ ? SpecOpKind::kPutBytesFixed
                             : SpecOpKind::kGetBytesFixed;
          op.slot = slot;
          op.offset = offset;
          op.count = t->bound();
          op.special = special;
          Emit(op);
          return true;
        }
        size_t stride = elem->NativeSize();
        for (uint32_t i = 0; i < t->bound(); ++i) {
          if (ops_.size() > kMaxSpecOps) {
            return Reject("superinstruction budget exceeded");
          }
          if (!AddFixedValue(elem, slot,
                             offset + i * static_cast<uint32_t>(stride),
                             /*special=*/false)) {
            return false;
          }
        }
        return true;
      }
      case TypeKind::kStruct: {
        for (size_t i = 0; i < t->fields().size(); ++i) {
          if (ops_.size() > kMaxSpecOps) {
            return Reject("superinstruction budget exceeded");
          }
          if (!AddFixedValue(
                  t->fields()[i].type, slot,
                  offset + static_cast<uint32_t>(NativeFieldOffset(t, i)),
                  /*special=*/false)) {
            return false;
          }
        }
        return true;
      }
      case TypeKind::kString:
      case TypeKind::kSequence:
      case TypeKind::kUnion:
      case TypeKind::kVoid:
        return Reject(StrFormat(
            "nested %s member is not fixed-size straight-line code",
            std::string(TypeKindName(t->kind())).c_str()));
      default: {
        unsigned width = WireScalarWidth(t->kind());
        if (width == 0) {
          return Reject("unsupported nested scalar kind");
        }
        SpecOp op;
        op.kind = marshal_ ? SpecOpKind::kPutScalarMem
                           : SpecOpKind::kGetScalarMem;
        op.width = static_cast<uint8_t>(width);
        op.slot = slot;
        op.offset = offset;
        Emit(op);
        return true;
      }
    }
  }

  const OpPresentation& pres_;
  bool marshal_;
  bool is_reply_;
  std::vector<SpecOp> ops_;
  std::string reason_;
};

}  // namespace

SpecPlan CompileSpecPlan(const OperationDecl& op,
                         const OpPresentation& pres) {
  SpecPlan plan;
  plan.key = ComputeSpecKey(op, pres);
  plan.op_name = op.name;
  MarshalProgram program = MarshalProgram::Build(op, pres);
  MarshalPlanView view = program.Plan();

  struct StreamSpec {
    SpecStream stream;
    const std::vector<PlanItemView>* items;
    bool marshal;
    bool is_reply;
  };
  const StreamSpec streams[] = {
      {SpecStream::kMarshalRequest, &view.request, true, false},
      {SpecStream::kUnmarshalRequest, &view.request, false, false},
      {SpecStream::kMarshalReply, &view.reply, true, true},
      {SpecStream::kUnmarshalReply, &view.reply, false, true},
  };
  for (const StreamSpec& s : streams) {
    StreamCompiler compiler(pres, s.marshal, s.is_reply);
    size_t index = static_cast<size_t>(s.stream);
    if (compiler.Compile(*s.items)) {
      plan.has_stream[index] = true;
      plan.streams[index].ops = compiler.TakeOps();
    } else {
      plan.rejection[index] = compiler.reason();
    }
  }
  return plan;
}

// ---- Reference executors ---------------------------------------------------
//
// These are the operational semantics of the opcode set: the C++ the
// spec_gen emitter produces is this switch unrolled with every operand
// folded to a constant. Any behavioral edit here must be mirrored there
// (the differential sweep in tests/flexspec_test.cc enforces it).

namespace {

void PutScalarWidth(WireWriter* w, uint8_t width, uint64_t bits) {
  switch (width) {
    case 1:
      w->PutU8(static_cast<uint8_t>(bits));
      return;
    case 2:
      w->PutU16(static_cast<uint16_t>(bits));
      return;
    case 4:
      w->PutU32(static_cast<uint32_t>(bits));
      return;
    default:
      w->PutU64(bits);
      return;
  }
}

Result<uint64_t> GetScalarWidth(WireReader* r, uint8_t width) {
  switch (width) {
    case 1: {
      FLEXRPC_ASSIGN_OR_RETURN(uint8_t v, r->GetU8());
      return static_cast<uint64_t>(v);
    }
    case 2: {
      FLEXRPC_ASSIGN_OR_RETURN(uint16_t v, r->GetU16());
      return static_cast<uint64_t>(v);
    }
    case 4: {
      FLEXRPC_ASSIGN_OR_RETURN(uint32_t v, r->GetU32());
      return static_cast<uint64_t>(v);
    }
    default:
      return r->GetU64();
  }
}

uint32_t MarshalLength(const SpecOp& op, const ArgVec& args) {
  switch (op.len_src) {
    case SpecLenSource::kSlotLength:
      return args[static_cast<size_t>(op.slot)].length;
    case SpecLenSource::kLenSlot:
      return static_cast<uint32_t>(
          args[static_cast<size_t>(op.len_slot)].scalar);
    case SpecLenSource::kStrLen: {
      const char* s = static_cast<const char*>(
          args[static_cast<size_t>(op.slot)].ptr());
      return s == nullptr ? 0 : static_cast<uint32_t>(std::strlen(s));
    }
  }
  return 0;
}

}  // namespace

Status RunSpecMarshal(const SpecProgram& prog, const ArgVec& args,
                      WireWriter* w, const SpecialOps* special) {
  for (const SpecOp& op : prog.ops) {
    const ArgValue& slot = args[static_cast<size_t>(op.slot)];
    bool use_special = op.special && special != nullptr &&
                       special->copy_out != nullptr;
    switch (op.kind) {
      case SpecOpKind::kPutScalarSlot:
        PutScalarWidth(w, op.width, slot.scalar);
        break;
      case SpecOpKind::kPutScalarMem: {
        uint64_t bits = 0;
        std::memcpy(&bits, static_cast<const uint8_t*>(slot.ptr()) +
                               op.offset,
                    op.width);
        PutScalarWidth(w, op.width, bits);
        break;
      }
      case SpecOpKind::kPutBytesFixed: {
        const uint8_t* src =
            static_cast<const uint8_t*>(slot.ptr()) + op.offset;
        if (use_special) {
          special->copy_out(w->ReserveBytes(op.count), src, op.count);
        } else {
          w->PutBytes(src, op.count);
        }
        break;
      }
      case SpecOpKind::kPutSeqBytes: {
        uint32_t len = MarshalLength(op, args);
        if (op.bound != 0 && len > op.bound) {
          return InvalidArgumentError(StrFormat(
              "sequence length %u exceeds bound %u", len, op.bound));
        }
        w->PutU32(len);
        if (use_special) {
          special->copy_out(w->ReserveBytes(len), slot.ptr(), len);
        } else {
          w->PutBytes(slot.ptr(), len);
        }
        break;
      }
      case SpecOpKind::kPutString: {
        uint32_t len = MarshalLength(op, args);
        if (op.bound != 0 && len > op.bound) {
          return InvalidArgumentError(StrFormat(
              "string length %u exceeds bound %u", len, op.bound));
        }
        w->PutU32(len);
        if (use_special) {
          special->copy_out(w->ReserveBytes(len), slot.ptr(), len);
        } else {
          w->PutBytes(slot.ptr(), len);
        }
        break;
      }
      case SpecOpKind::kPutUnionDisc: {
        uint32_t disc = static_cast<uint32_t>(slot.scalar);
        w->PutU32(disc);
        if (disc != op.label) {
          return Status::Ok();  // alternate arms are void by construction
        }
        break;
      }
      default:
        return InternalError("unmarshal opcode in a marshal stream");
    }
  }
  return Status::Ok();
}

Status RunSpecUnmarshal(const SpecProgram& prog, WireReader* r, Arena* arena,
                        ArgVec* args, const SpecialOps* special,
                        bool borrow_bytes) {
  for (const SpecOp& op : prog.ops) {
    ArgValue* slot = &(*args)[static_cast<size_t>(op.slot)];
    bool use_special = op.special && special != nullptr &&
                       special->copy_in != nullptr;
    switch (op.kind) {
      case SpecOpKind::kEnsureStorage:
        if (slot->ptr() == nullptr) {
          slot->set_ptr(arena->AllocateBlock(op.count));
        }
        break;
      case SpecOpKind::kGetScalarSlot: {
        FLEXRPC_ASSIGN_OR_RETURN(uint64_t bits,
                                 GetScalarWidth(r, op.width));
        slot->scalar = bits;
        break;
      }
      case SpecOpKind::kGetScalarMem: {
        FLEXRPC_ASSIGN_OR_RETURN(uint64_t bits,
                                 GetScalarWidth(r, op.width));
        std::memcpy(static_cast<uint8_t*>(slot->ptr()) + op.offset, &bits,
                    op.width);
        break;
      }
      case SpecOpKind::kGetBytesFixed: {
        FLEXRPC_ASSIGN_OR_RETURN(const uint8_t* bytes,
                                 r->GetBytes(op.count));
        uint8_t* dest = static_cast<uint8_t*>(slot->ptr()) + op.offset;
        if (use_special) {
          special->copy_in(dest, bytes, op.count);
        } else {
          std::memcpy(dest, bytes, op.count);
        }
        break;
      }
      case SpecOpKind::kGetSeqBytes: {
        FLEXRPC_ASSIGN_OR_RETURN(uint32_t len, r->GetU32());
        if (op.bound != 0 && len > op.bound) {
          return DataLossError(StrFormat(
              "wire sequence length %u exceeds bound %u", len, op.bound));
        }
        FLEXRPC_ASSIGN_OR_RETURN(const uint8_t* bytes, r->GetBytes(len));
        bool caller_buffer = slot->ptr() != nullptr;
        if (borrow_bytes && !caller_buffer && !use_special) {
          slot->set_ptr(bytes);
          slot->length = len;
          slot->borrowed = true;
          break;
        }
        void* dest;
        if (caller_buffer) {
          if (slot->capacity < len) {
            return ResourceExhaustedError(StrFormat(
                "caller buffer (%u bytes) too small for %u-byte sequence",
                slot->capacity, len));
          }
          dest = slot->ptr();
        } else {
          dest = arena->AllocateBlock(len > 0 ? len : 1);
          slot->set_ptr(dest);
        }
        if (use_special) {
          special->copy_in(dest, bytes, len);
        } else {
          std::memcpy(dest, bytes, len);
        }
        slot->length = len;
        break;
      }
      case SpecOpKind::kGetString: {
        FLEXRPC_ASSIGN_OR_RETURN(uint32_t len, r->GetU32());
        if (op.bound != 0 && len > op.bound) {
          return DataLossError(StrFormat(
              "wire string length %u exceeds bound %u", len, op.bound));
        }
        FLEXRPC_ASSIGN_OR_RETURN(const uint8_t* bytes, r->GetBytes(len));
        bool caller_buffer = slot->ptr() != nullptr;
        char* dest;
        if (caller_buffer) {
          if (slot->capacity < len + 1) {
            return ResourceExhaustedError(StrFormat(
                "caller buffer (%u bytes) too small for %u-byte string",
                slot->capacity, len));
          }
          dest = static_cast<char*>(slot->ptr());
        } else {
          dest = static_cast<char*>(arena->AllocateBlock(len + 1));
          slot->set_ptr(dest);
        }
        if (use_special) {
          special->copy_in(dest, bytes, len);
        } else {
          std::memcpy(dest, bytes, len);
        }
        dest[len] = '\0';
        slot->length = len;
        break;
      }
      case SpecOpKind::kGetUnionDisc: {
        FLEXRPC_ASSIGN_OR_RETURN(uint32_t disc, r->GetU32());
        slot->scalar = disc;
        if (disc != op.label) {
          return Status::Ok();
        }
        break;
      }
      default:
        return InternalError("marshal opcode in an unmarshal stream");
    }
  }
  return Status::Ok();
}

// ---- Registry, dispatch switch, profile ------------------------------------

namespace {

struct Registry {
  std::mutex mu;
  std::map<SpecKey, SpecFns> fns;
  std::map<SpecKey, std::unique_ptr<MarshalProfileCell>> profile;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry;
  return *registry;
}

std::atomic<bool> g_spec_enabled{true};

}  // namespace

bool RegisterSpecialization(const SpecKey& key, const SpecFns& fns) {
  Registry& reg = GlobalRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.fns.emplace(key, fns).second;
}

const SpecFns* FindSpecialization(const SpecKey& key) {
  Registry& reg = GlobalRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.fns.find(key);
  return it == reg.fns.end() ? nullptr : &it->second;
}

void UnregisterSpecialization(const SpecKey& key) {
  Registry& reg = GlobalRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.fns.erase(key);
}

size_t SpecializationCount() {
  Registry& reg = GlobalRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.fns.size();
}

void SetMarshalSpecializationEnabled(bool enabled) {
  g_spec_enabled.store(enabled, std::memory_order_relaxed);
}

bool MarshalSpecializationEnabled() {
  return g_spec_enabled.load(std::memory_order_relaxed);
}

MarshalProfileCell* InternMarshalProfileCell(const SpecKey& key,
                                             std::string_view op_name) {
  Registry& reg = GlobalRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.profile.find(key);
  if (it == reg.profile.end()) {
    auto cell = std::make_unique<MarshalProfileCell>();
    cell->key = key;
    cell->op_name = std::string(op_name);
    it = reg.profile.emplace(key, std::move(cell)).first;
  }
  return it->second.get();
}

std::vector<MarshalProfileEntry> SnapshotMarshalProfile() {
  Registry& reg = GlobalRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<MarshalProfileEntry> out;
  out.reserve(reg.profile.size());
  for (const auto& [key, cell] : reg.profile) {
    MarshalProfileEntry e;
    e.key = key;
    e.op_name = cell->op_name;
    e.marshal_calls = cell->marshal_calls.load(std::memory_order_relaxed);
    e.unmarshal_calls =
        cell->unmarshal_calls.load(std::memory_order_relaxed);
    e.wire_bytes = cell->wire_bytes.load(std::memory_order_relaxed);
    out.push_back(std::move(e));
  }
  return out;
}

void ResetMarshalProfile() {
  Registry& reg = GlobalRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [key, cell] : reg.profile) {
    (void)key;
    cell->marshal_calls.store(0, std::memory_order_relaxed);
    cell->unmarshal_calls.store(0, std::memory_order_relaxed);
    cell->wire_bytes.store(0, std::memory_order_relaxed);
  }
}

}  // namespace flexrpc
