// Native in-memory layout of IDL values (the default C presentation).
//
// The runtime stub engine stores unflattened structured parameters in
// memory laid out by these rules, mirroring the CORBA C mapping the paper's
// Figure 4 shows:
//   * scalars at their natural size/alignment,
//   * string members as char* (NUL-terminated),
//   * sequence members as SeqRep{maximum, length, buffer},
//   * struct members at aligned offsets, in declaration order,
//   * unions as {u32 discriminant; padded payload overlay}.
// Sizes and alignments come from Type::NativeSize()/NativeAlign().

#ifndef FLEXRPC_SRC_MARSHAL_LAYOUT_H_
#define FLEXRPC_SRC_MARSHAL_LAYOUT_H_

#include <cstddef>
#include <cstdint>

#include "src/idl/types.h"

namespace flexrpc {

// The native representation of sequence<T> (paper Fig. 4's
// CORBA_SEQUENCE_char with the standard field order).
struct SeqRep {
  uint32_t maximum = 0;
  uint32_t length = 0;
  void* buffer = nullptr;
};
static_assert(sizeof(SeqRep) == 16, "SeqRep layout is part of the ABI");

// Byte offset of field `field_index` within the native layout of
// `struct_type` (which must resolve to a struct).
size_t NativeFieldOffset(const Type* struct_type, size_t field_index);

// Byte offset of the payload overlay within a native union value (the
// discriminant is a u32 at offset 0).
size_t UnionPayloadOffset(const Type* union_type);

// Bit-pattern conversions for floating-point scalars crossing the ArgVec
// (slots carry u64 bit patterns). Used by generated stubs.
template <typename F>
inline F BitsToFloat(uint64_t bits) {
  if constexpr (sizeof(F) == 4) {
    uint32_t narrow = static_cast<uint32_t>(bits);
    F v;
    __builtin_memcpy(&v, &narrow, sizeof(v));
    return v;
  } else {
    F v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
}

inline uint64_t FloatToBits(float v) {
  uint32_t bits;
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return bits;
}

inline uint64_t FloatToBits(double v) {
  uint64_t bits;
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// Reads/writes a scalar (bool/char/octet/int/float/enum/objref) of `type`
// from/to native memory, widening to a u64 bit pattern. Floats travel as
// their bit patterns.
uint64_t LoadScalar(const Type* type, const void* src);
void StoreScalar(const Type* type, void* dst, uint64_t bits);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_MARSHAL_LAYOUT_H_
