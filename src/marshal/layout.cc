#include "src/marshal/layout.h"

#include <cassert>
#include <cstring>

namespace flexrpc {

namespace {
size_t AlignUp(size_t value, size_t align) {
  return (value + align - 1) & ~(align - 1);
}
}  // namespace

size_t NativeFieldOffset(const Type* struct_type, size_t field_index) {
  return struct_type->Resolve()->FieldOffset(field_index);
}

size_t UnionPayloadOffset(const Type* union_type) {
  const Type* u = union_type->Resolve();
  assert(u->kind() == TypeKind::kUnion);
  return AlignUp(4, u->NativeAlign());
}

uint64_t LoadScalar(const Type* type, const void* src) {
  switch (type->Resolve()->kind()) {
    case TypeKind::kBool:
    case TypeKind::kOctet:
    case TypeKind::kChar: {
      uint8_t v;
      std::memcpy(&v, src, 1);
      return v;
    }
    case TypeKind::kI16:
    case TypeKind::kU16: {
      uint16_t v;
      std::memcpy(&v, src, 2);
      return v;
    }
    case TypeKind::kI32:
    case TypeKind::kU32:
    case TypeKind::kF32:
    case TypeKind::kEnum: {
      uint32_t v;
      std::memcpy(&v, src, 4);
      return v;
    }
    case TypeKind::kI64:
    case TypeKind::kU64:
    case TypeKind::kF64:
    case TypeKind::kObjRef: {
      uint64_t v;
      std::memcpy(&v, src, 8);
      return v;
    }
    default:
      assert(false && "LoadScalar on non-scalar type");
      return 0;
  }
}

void StoreScalar(const Type* type, void* dst, uint64_t bits) {
  switch (type->Resolve()->kind()) {
    case TypeKind::kBool:
    case TypeKind::kOctet:
    case TypeKind::kChar: {
      uint8_t v = static_cast<uint8_t>(bits);
      std::memcpy(dst, &v, 1);
      return;
    }
    case TypeKind::kI16:
    case TypeKind::kU16: {
      uint16_t v = static_cast<uint16_t>(bits);
      std::memcpy(dst, &v, 2);
      return;
    }
    case TypeKind::kI32:
    case TypeKind::kU32:
    case TypeKind::kF32:
    case TypeKind::kEnum: {
      uint32_t v = static_cast<uint32_t>(bits);
      std::memcpy(dst, &v, 4);
      return;
    }
    case TypeKind::kI64:
    case TypeKind::kU64:
    case TypeKind::kF64:
    case TypeKind::kObjRef: {
      std::memcpy(dst, &bits, 8);
      return;
    }
    default:
      assert(false && "StoreScalar on non-scalar type");
  }
}

}  // namespace flexrpc
