// Recursive marshaling of native-layout values to and from a wire format.
//
// These routines implement the *default* (attribute-free) encoding used for
// nested data; top-level parameters go through the presentation-aware
// MarshalProgram (src/marshal/engine.h), which applies [special] routines,
// explicit lengths, and allocation policies before delegating to these for
// structured payloads.

#ifndef FLEXRPC_SRC_MARSHAL_VALUE_H_
#define FLEXRPC_SRC_MARSHAL_VALUE_H_

#include "src/idl/types.h"
#include "src/marshal/format.h"
#include "src/support/arena.h"
#include "src/support/status.h"

namespace flexrpc {

// Writes a scalar's u64 bit pattern at the wire width of `type`.
void PutScalarWire(WireWriter* w, const Type* type, uint64_t bits);
// Reads a scalar of `type`, widened to a u64 bit pattern.
Result<uint64_t> GetScalarWire(WireReader* r, const Type* type);

// Marshals the native-layout value at `src`.
Status MarshalValue(WireWriter* w, const Type* type, const void* src);

// Unmarshals into the native-layout storage at `dst` (NativeSize(type)
// bytes, caller-provided). Variable-size payloads (string bytes, sequence
// buffers) are allocated from `arena` with AllocateBlock.
Status UnmarshalValue(WireReader* r, const Type* type, void* dst,
                      Arena* arena);

// Frees the nested blocks UnmarshalValue allocated inside `native` (but not
// `native` itself, which the caller owns).
void FreeValue(Arena* arena, const Type* type, void* native);

// Deep structural equality of two native-layout values (test support and
// same-domain copy elision verification).
bool ValueEquals(const Type* type, const void* a, const void* b);

// Deep-copies the native value at `src` into `dst`, allocating nested
// buffers from `arena` (used by the same-domain engine when copy semantics
// are required).
Status CopyValue(Arena* arena, const Type* type, const void* src, void* dst);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_MARSHAL_VALUE_H_
