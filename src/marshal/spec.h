// flexspec — profile-guided marshal superinstructions.
//
// The interpreted MarshalProgram (engine.h) walks one wire item per step,
// re-deciding type kind, presentation attributes, and length discipline on
// every call. For hot (operation signature × presentation) pairs that is
// pure overhead: every decision is already fixed at bind time. flexspec
// compiles such plans into *superinstructions* — short straight-line
// programs over a closed opcode set whose every operand (slot, offset,
// width, bound, length source) is a constant — and `idlc --specialize`
// emits them as fused C++ functions that register themselves here. The
// engine looks its (signature, presentation) key up at bind time and
// dispatches per call: registry hit → straight-line code, miss → the
// interpreter (gated `marshal.spec.hit/miss` counters).
//
// Correctness story (the flexcheck stage-3 prover, src/analysis/
// spec_verifier.h): a specialization is only emitted after a symbolic
// wire-effect interpreter proves the SpecProgram byte-for-byte equivalent
// to the interpreted plan. The executor in this file (RunSpecMarshal /
// RunSpecUnmarshal) defines the operational semantics the emitted C++ is
// template-for-template identical to; differential tests drive both
// against the interpreter over every seed IDL signature.
//
// Deliberate semantic difference from the interpreter: specialized
// streams do not bump the per-opcode `marshal.ops.*` trace counters
// (counting would reintroduce the interpreter's per-item overhead). The
// engine instead counts one `marshal.spec.hit` per stream execution and
// credits `marshal.bytes_*` with the stream's wire delta at dispatch.
// Wire bytes, statuses, and ArgVec effects are identical.

#ifndef FLEXRPC_SRC_MARSHAL_SPEC_H_
#define FLEXRPC_SRC_MARSHAL_SPEC_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/idl/ast.h"
#include "src/marshal/engine.h"
#include "src/pdl/presentation.h"
#include "src/support/status.h"

namespace flexrpc {

// Identity of a bind-time marshal plan: the operation's structural wire
// contract × the marshal-relevant presentation digest. Names never enter
// the op hash (two structurally identical operations share specialized
// code, as they share a combination signature in the paper's scheme); the
// presentation digest covers every attribute the engine's behavior can
// depend on, so distinct behaviors never alias.
struct SpecKey {
  uint64_t op_hash = 0;
  uint64_t pres_hash = 0;

  bool operator==(const SpecKey&) const = default;
  bool operator<(const SpecKey& o) const {
    return op_hash != o.op_hash ? op_hash < o.op_hash
                                : pres_hash < o.pres_hash;
  }
};

SpecKey ComputeSpecKey(const OperationDecl& op, const OpPresentation& pres);

// Wire width in bytes (1, 2, 4, 8) of a scalar kind, exactly as
// PutScalarWire/GetScalarWire move it; 0 for non-scalar kinds.
unsigned WireScalarWidth(TypeKind kind);

// The four per-call entry points a plan compiles to.
enum class SpecStream : uint8_t {
  kMarshalRequest = 0,
  kUnmarshalRequest,
  kMarshalReply,
  kUnmarshalReply,
};
inline constexpr size_t kSpecStreamCount = 4;

std::string_view SpecStreamName(SpecStream stream);

// The closed superinstruction set. Every operand is fixed at compile time;
// the only per-call inputs are the ArgVec, the wire, and the runtime
// [special]/borrow flags the engine entry points already take.
enum class SpecOpKind : uint8_t {
  kPutScalarSlot,   // wire scalar from args[slot].scalar
  kPutScalarMem,    // wire scalar loaded from args[slot].ptr() + offset
  kPutBytesFixed,   // `count` raw bytes from args[slot].ptr() + offset
  kPutSeqBytes,     // u32 length prefix + that many bytes from args[slot]
  kPutString,       // u32 length prefix + string bytes from args[slot]
  kPutUnionDisc,    // u32 from args[slot].scalar; end-of-stream unless
                    //   it equals `label` (void alternate arms)
  kGetScalarSlot,   // wire scalar into args[slot].scalar
  kGetScalarMem,    // wire scalar stored at args[slot].ptr() + offset
  kGetBytesFixed,   // `count` raw bytes to args[slot].ptr() + offset
  kGetSeqBytes,     // u32 length + bytes into the slot (borrow/caller/
                    //   arena policy identical to the interpreter)
  kGetString,       // u32 length + bytes + NUL into the slot
  kGetUnionDisc,    // u32 into args[slot].scalar; end-of-stream unless
                    //   it equals `label`
  kEnsureStorage,   // if args[slot].ptr() == null, point it at
                    //   arena->AllocateBlock(count)
};

std::string_view SpecOpKindName(SpecOpKind kind);

// Where a marshal-side variable length comes from.
enum class SpecLenSource : uint8_t {
  kSlotLength,  // args[slot].length
  kLenSlot,     // args[len_slot].scalar ([length_is] presentation)
  kStrLen,      // strlen(args[slot].ptr())
};

struct SpecOp {
  SpecOpKind kind = SpecOpKind::kPutScalarSlot;
  uint8_t width = 4;     // wire scalar width for *Scalar* ops (1/2/4/8)
  int slot = -1;         // ArgVec slot the op reads or writes
  uint32_t offset = 0;   // native byte offset for *Mem / *BytesFixed
  uint32_t count = 0;    // byte count for *BytesFixed / kEnsureStorage
  uint32_t bound = 0;    // declared length bound (0 = unbounded)
  SpecLenSource len_src = SpecLenSource::kSlotLength;
  int len_slot = -1;     // [length_is] slot for kLenSlot
  uint32_t label = 0;    // union success label for *UnionDisc
  bool special = false;  // may route through SpecialOps at runtime

  bool operator==(const SpecOp&) const = default;
};

struct SpecProgram {
  std::vector<SpecOp> ops;
};

// One (operation × presentation)'s compiled superinstruction streams.
// Streams outside the specializable subset are absent, with the reason
// kept for the FLEX205 diagnostic and for --specialize logs.
struct SpecPlan {
  SpecKey key;
  std::string op_name;
  bool has_stream[kSpecStreamCount] = {};
  SpecProgram streams[kSpecStreamCount];
  std::string rejection[kSpecStreamCount];

  bool AnyStream() const {
    for (bool has : has_stream) {
      if (has) {
        return true;
      }
    }
    return false;
  }
};

// Compiles every specializable stream of (op, pres). Total: a stream the
// compiler cannot express straight-line is recorded as rejected, never
// mis-compiled. `op` and `pres` must outlive nothing — the SpecPlan is
// self-contained.
SpecPlan CompileSpecPlan(const OperationDecl& op, const OpPresentation& pres);

// Reference executors: the operational semantics of a SpecProgram,
// instruction-for-instruction what the emitted C++ does. Used by the
// differential test sweep; generated code never calls these.
Status RunSpecMarshal(const SpecProgram& prog, const ArgVec& args,
                      WireWriter* w, const SpecialOps* special);
Status RunSpecUnmarshal(const SpecProgram& prog, WireReader* r, Arena* arena,
                        ArgVec* args, const SpecialOps* special,
                        bool borrow_bytes);

// ---- Registry of compiled-in specializations -------------------------------

using SpecMarshalFn = Status (*)(const ArgVec& args, WireWriter* w,
                                 const SpecialOps* special);
using SpecUnmarshalFn = Status (*)(WireReader* r, Arena* arena, ArgVec* args,
                                   const SpecialOps* special,
                                   bool borrow_bytes);

// Function table one generated unit registers for one SpecKey. Null slots
// fall back to the interpreter for that stream.
struct SpecFns {
  SpecMarshalFn marshal_request = nullptr;
  SpecUnmarshalFn unmarshal_request = nullptr;
  SpecMarshalFn marshal_reply = nullptr;
  SpecUnmarshalFn unmarshal_reply = nullptr;
};

// First registration for a key wins (generated units may legitimately
// overlap, e.g. both sides of one interface); returns false on duplicate.
bool RegisterSpecialization(const SpecKey& key, const SpecFns& fns);
const SpecFns* FindSpecialization(const SpecKey& key);
// Test support: removes one registration (e.g. an executor-backed fake).
void UnregisterSpecialization(const SpecKey& key);
size_t SpecializationCount();

// Global dispatch switch, default on. Benches A/B the fast path against
// the interpreter with this (same program, same wire bytes).
void SetMarshalSpecializationEnabled(bool enabled);
bool MarshalSpecializationEnabled();

// ---- Bind-time marshal profile ---------------------------------------------
//
// Every MarshalProgram::Build interns a profile cell for its SpecKey; the
// engine entry points count calls and wire bytes into it while tracing is
// enabled. BenchHarness serializes the snapshot into BENCH_*.json as the
// "marshal_profile" section, which `idlc --specialize --profile=` ranks to
// pick the top-K plans.

struct MarshalProfileCell {
  SpecKey key;
  std::string op_name;
  std::atomic<uint64_t> marshal_calls{0};
  std::atomic<uint64_t> unmarshal_calls{0};
  std::atomic<uint64_t> wire_bytes{0};
};

// Returns the (process-wide) cell for `key`, creating it on first use.
MarshalProfileCell* InternMarshalProfileCell(const SpecKey& key,
                                             std::string_view op_name);

struct MarshalProfileEntry {
  SpecKey key;
  std::string op_name;
  uint64_t marshal_calls = 0;
  uint64_t unmarshal_calls = 0;
  uint64_t wire_bytes = 0;
};

// Point-in-time copy, sorted by key for deterministic artifacts.
std::vector<MarshalProfileEntry> SnapshotMarshalProfile();
// Zeroes every cell (the bench harness resets at its trace window open).
void ResetMarshalProfile();

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_MARSHAL_SPEC_H_
