#include "src/marshal/engine.h"

#include <cstring>
#include <unordered_map>

#include "src/marshal/layout.h"
#include "src/marshal/spec.h"
#include "src/marshal/value.h"
#include "src/pdl/apply.h"
#include "src/support/recorder.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

namespace flexrpc {

namespace {

bool IsByteElem(const Type* elem) {
  TypeKind k = elem->Resolve()->kind();
  return k == TypeKind::kOctet || k == TypeKind::kChar;
}

// Classifies one interpreter step for the per-opcode trace counters.
// [special] presentations are their own bucket: they replace the copy
// routine wholesale, so their cost profile differs from the plain kinds.
TraceCounter MarshalOpCounter(const Type* resolved, bool use_special) {
  if (use_special) {
    return TraceCounter::kMarshalOpSpecial;
  }
  switch (resolved->kind()) {
    case TypeKind::kString:
      return TraceCounter::kMarshalOpString;
    case TypeKind::kSequence:
    case TypeKind::kArray:
      return TraceCounter::kMarshalOpBytes;
    case TypeKind::kStruct:
      return TraceCounter::kMarshalOpStruct;
    case TypeKind::kUnion:
      return TraceCounter::kMarshalOpUnion;
    default:
      return TraceCounter::kMarshalOpScalar;
  }
}

bool OwnsHeapStorage(const Type* type) {
  switch (type->Resolve()->kind()) {
    case TypeKind::kString:
    case TypeKind::kSequence:
    case TypeKind::kArray:
    case TypeKind::kStruct:
    case TypeKind::kUnion:
      return true;
    default:
      return false;
  }
}

}  // namespace

MarshalProgram MarshalProgram::Build(const OperationDecl& op,
                                     const OpPresentation& pres) {
  MarshalProgram prog;
  prog.op_ = &op;
  prog.pres_ = &pres;
  prog.slot_count_ = pres.params.size() + 1;

  auto make_param_item = [&](int pi) {
    Item item;
    const ParamDecl& decl = op.params[static_cast<size_t>(pi)];
    item.type = decl.type;
    item.dir = decl.dir;
    for (size_t s = 0; s < pres.params.size(); ++s) {
      const Binding& b = pres.params[s].binding;
      if (b.kind == BindingKind::kParam && b.param_index == pi) {
        item.slot = static_cast<int>(s);
        item.pres = &pres.params[s];
        return item;
      }
    }
    // No direct binding: the parameter was flattened into its fields.
    item.flattened = true;
    const Type* st = item.type->Resolve();
    item.fields.resize(st->fields().size());
    for (size_t s = 0; s < pres.params.size(); ++s) {
      const Binding& b = pres.params[s].binding;
      if (b.kind == BindingKind::kParamField && b.param_index == pi) {
        item.fields[static_cast<size_t>(b.field_index)] = FieldSlot{
            st->fields()[static_cast<size_t>(b.field_index)].type,
            static_cast<int>(s), &pres.params[s]};
      }
    }
    return item;
  };

  for (size_t i = 0; i < op.params.size(); ++i) {
    Item item = make_param_item(static_cast<int>(i));
    if (item.dir != ParamDir::kOut) {
      prog.request_items_.push_back(item);
    }
    if (item.dir != ParamDir::kIn) {
      prog.reply_items_.push_back(item);
    }
  }

  const Type* result = op.result->Resolve();
  bool result_void = result->kind() == TypeKind::kVoid;
  if (!result_void) {
    Item item;
    item.type = op.result;
    item.dir = ParamDir::kOut;
    item.is_result = true;
    if (!pres.result_flattened) {
      item.slot = prog.result_slot();
      item.pres = &pres.result;
    } else {
      item.flattened = true;
      item.success_struct = FlattenableResultStruct(op);
      if (result->kind() == TypeKind::kUnion) {
        for (const UnionArm& arm : result->arms()) {
          if (arm.type->Resolve() == item.success_struct) {
            item.success_label = arm.label;
            break;
          }
        }
      }
      if (item.success_struct != nullptr) {
        item.fields.resize(item.success_struct->fields().size());
      }
      for (size_t s = 0; s < pres.params.size(); ++s) {
        const Binding& b = pres.params[s].binding;
        if (b.kind == BindingKind::kResultField) {
          item.fields[static_cast<size_t>(b.field_index)] = FieldSlot{
              item.success_struct->fields()[static_cast<size_t>(
                  b.field_index)].type,
              static_cast<int>(s), &pres.params[s]};
        } else if (b.kind == BindingKind::kResultDiscriminant) {
          item.disc_slot = static_cast<int>(s);
        }
      }
    }
    prog.reply_items_.push_back(std::move(item));
  }
  // flexspec bind-time step: one key computation and one registry probe
  // here buys branch-free per-call dispatch below, and interns the
  // profile cell the bench harness snapshots into BENCH_*.json.
  SpecKey key = ComputeSpecKey(op, pres);
  prog.profile_ = InternMarshalProfileCell(key, op.name);
  prog.spec_fns_ = FindSpecialization(key);
  return prog;
}

MarshalPlanView MarshalProgram::Plan() const {
  auto view_items = [](const std::vector<Item>& items) {
    std::vector<PlanItemView> out;
    out.reserve(items.size());
    for (const Item& item : items) {
      PlanItemView v;
      v.type = item.type;
      v.dir = item.dir;
      v.is_result = item.is_result;
      v.flattened = item.flattened;
      v.slot = item.slot;
      v.pres = item.pres;
      v.disc_slot = item.disc_slot;
      v.success_label = item.success_label;
      v.success_struct = item.success_struct;
      for (const FieldSlot& field : item.fields) {
        v.fields.push_back(PlanFieldView{field.type, field.slot, field.pres});
      }
      out.push_back(std::move(v));
    }
    return out;
  };
  MarshalPlanView plan;
  plan.slot_count = slot_count_;
  plan.request = view_items(request_items_);
  plan.reply = view_items(reply_items_);
  return plan;
}

int MarshalProgram::SlotOf(std::string_view name) const {
  for (size_t i = 0; i < pres_->params.size(); ++i) {
    if (pres_->params[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

uint32_t MarshalProgram::EffectiveLength(const ParamPresentation* pres,
                                         const Type* type,
                                         const ArgValue& slot,
                                         const ArgVec& args) const {
  if (pres != nullptr && pres->explicit_length) {
    int len_slot = SlotOf(pres->length_param);
    if (len_slot >= 0) {
      return static_cast<uint32_t>(args[static_cast<size_t>(len_slot)]
                                       .scalar);
    }
  }
  if (type->Resolve()->kind() == TypeKind::kString) {
    const char* s = static_cast<const char*>(slot.ptr());
    return s == nullptr ? 0 : static_cast<uint32_t>(std::strlen(s));
  }
  return slot.length;
}

Status MarshalProgram::MarshalRequest(const ArgVec& args, WireWriter* w,
                                      const SpecialOps* special) const {
  // The engine has no call identity of its own; it records only when the
  // caller opened a RecorderCallScope (src/apps/nfs.cc does, around each
  // stub invocation). Marshal work is host CPU, so the span is zero-width
  // in virtual time — its wall stamps still separate begin from end.
  const bool record = RecorderEnabled() && RecorderCallScope::Active();
  if (record) {
    RecordEvent(RecEvent::kMarshalBegin, RecEndpoint::kClient,
                RecorderCallScope::CurrentXid(),
                RecorderCallScope::CurrentVirtualNanos());
  }
  const size_t wire_before = w->size();
  if (spec_fns_ != nullptr && spec_fns_->marshal_request != nullptr &&
      MarshalSpecializationEnabled()) {
    TraceAdd(TraceCounter::kMarshalSpecHits);
    FLEXRPC_RETURN_IF_ERROR(spec_fns_->marshal_request(args, w, special));
    // The fused code skips the interpreter's per-item counters; account
    // its work as wire-delta bytes so traced budgets stay attributable.
    TraceAdd(TraceCounter::kMarshalBytesOut, w->size() - wire_before);
  } else {
    TraceAdd(TraceCounter::kMarshalSpecMisses);
    for (const Item& item : request_items_) {
      FLEXRPC_RETURN_IF_ERROR(MarshalItem(item, args, w, special));
    }
  }
  if (TraceEnabled() && profile_ != nullptr) {
    profile_->marshal_calls.fetch_add(1, std::memory_order_relaxed);
    profile_->wire_bytes.fetch_add(w->size() - wire_before,
                                   std::memory_order_relaxed);
  }
  if (record) {
    RecordEvent(RecEvent::kMarshalEnd, RecEndpoint::kClient,
                RecorderCallScope::CurrentXid(),
                RecorderCallScope::CurrentVirtualNanos());
  }
  return Status::Ok();
}

Status MarshalProgram::UnmarshalRequest(WireReader* r, Arena* arena,
                                        ArgVec* args,
                                        const SpecialOps* special,
                                        bool borrow_bytes) const {
  const size_t wire_before = r->remaining();
  if (spec_fns_ != nullptr && spec_fns_->unmarshal_request != nullptr &&
      MarshalSpecializationEnabled()) {
    TraceAdd(TraceCounter::kMarshalSpecHits);
    FLEXRPC_RETURN_IF_ERROR(spec_fns_->unmarshal_request(
        r, arena, args, special, borrow_bytes));
    TraceAdd(TraceCounter::kMarshalBytesIn, wire_before - r->remaining());
  } else {
    TraceAdd(TraceCounter::kMarshalSpecMisses);
    for (const Item& item : request_items_) {
      FLEXRPC_RETURN_IF_ERROR(
          UnmarshalItem(item, r, arena, args, special, borrow_bytes));
    }
  }
  if (TraceEnabled() && profile_ != nullptr) {
    profile_->unmarshal_calls.fetch_add(1, std::memory_order_relaxed);
    profile_->wire_bytes.fetch_add(wire_before - r->remaining(),
                                   std::memory_order_relaxed);
  }
  return Status::Ok();
}

Status MarshalProgram::MarshalReply(const ArgVec& args, WireWriter* w,
                                    Arena* arena,
                                    const SpecialOps* special) const {
  const size_t wire_before = w->size();
  if (spec_fns_ != nullptr && spec_fns_->marshal_reply != nullptr &&
      MarshalSpecializationEnabled()) {
    // Streams with [dealloc(always)] parameters are never specialized
    // (CompileSpecPlan rejects them), so skipping the DeallocAfterMarshal
    // epilogue here is sound.
    TraceAdd(TraceCounter::kMarshalSpecHits);
    FLEXRPC_RETURN_IF_ERROR(spec_fns_->marshal_reply(args, w, special));
    TraceAdd(TraceCounter::kMarshalBytesOut, w->size() - wire_before);
  } else {
    TraceAdd(TraceCounter::kMarshalSpecMisses);
    for (const Item& item : reply_items_) {
      FLEXRPC_RETURN_IF_ERROR(MarshalItem(item, args, w, special));
      if (arena != nullptr) {
        DeallocAfterMarshal(item, args, arena);
      }
    }
  }
  if (TraceEnabled() && profile_ != nullptr) {
    profile_->marshal_calls.fetch_add(1, std::memory_order_relaxed);
    profile_->wire_bytes.fetch_add(w->size() - wire_before,
                                   std::memory_order_relaxed);
  }
  return Status::Ok();
}

Status MarshalProgram::UnmarshalReply(WireReader* r, Arena* arena,
                                      ArgVec* args,
                                      const SpecialOps* special) const {
  const bool record = RecorderEnabled() && RecorderCallScope::Active();
  if (record) {
    RecordEvent(RecEvent::kMarshalBegin, RecEndpoint::kClient,
                RecorderCallScope::CurrentXid(),
                RecorderCallScope::CurrentVirtualNanos(), /*a=*/1);
  }
  const size_t wire_before = r->remaining();
  if (spec_fns_ != nullptr && spec_fns_->unmarshal_reply != nullptr &&
      MarshalSpecializationEnabled()) {
    TraceAdd(TraceCounter::kMarshalSpecHits);
    FLEXRPC_RETURN_IF_ERROR(spec_fns_->unmarshal_reply(
        r, arena, args, special, /*borrow_bytes=*/false));
    TraceAdd(TraceCounter::kMarshalBytesIn, wire_before - r->remaining());
  } else {
    TraceAdd(TraceCounter::kMarshalSpecMisses);
    for (const Item& item : reply_items_) {
      // Never borrow on the client: the reply buffer is released as soon
      // as the stub returns.
      FLEXRPC_RETURN_IF_ERROR(UnmarshalItem(item, r, arena, args, special,
                                            /*borrow_bytes=*/false));
    }
  }
  if (TraceEnabled() && profile_ != nullptr) {
    profile_->unmarshal_calls.fetch_add(1, std::memory_order_relaxed);
    profile_->wire_bytes.fetch_add(wire_before - r->remaining(),
                                   std::memory_order_relaxed);
  }
  if (record) {
    RecordEvent(RecEvent::kMarshalEnd, RecEndpoint::kClient,
                RecorderCallScope::CurrentXid(),
                RecorderCallScope::CurrentVirtualNanos(), /*a=*/1);
  }
  return Status::Ok();
}

Status MarshalProgram::MarshalItem(const Item& item, const ArgVec& args,
                                   WireWriter* w,
                                   const SpecialOps* special) const {
  if (!item.flattened) {
    const ArgValue& slot = args[static_cast<size_t>(item.slot)];
    return MarshalTop(item.pres, item.type, slot,
                      EffectiveLength(item.pres, item.type, slot, args), w,
                      special);
  }
  const Type* resolved = item.type->Resolve();
  if (item.is_result && resolved->kind() == TypeKind::kUnion) {
    uint32_t disc =
        static_cast<uint32_t>(args[static_cast<size_t>(item.disc_slot)]
                                  .scalar);
    w->PutU32(disc);
    if (disc != item.success_label) {
      // The alternate arms of a flattenable result are void by
      // construction (FlattenableResultStruct).
      return Status::Ok();
    }
  }
  for (const FieldSlot& field : item.fields) {
    const ArgValue& slot = args[static_cast<size_t>(field.slot)];
    FLEXRPC_RETURN_IF_ERROR(MarshalTop(
        field.pres, field.type, slot,
        EffectiveLength(field.pres, field.type, slot, args), w, special));
  }
  return Status::Ok();
}

Status MarshalProgram::UnmarshalItem(const Item& item, WireReader* r,
                                     Arena* arena, ArgVec* args,
                                     const SpecialOps* special,
                                     bool borrow_bytes) const {
  if (!item.flattened) {
    ArgValue* slot = &(*args)[static_cast<size_t>(item.slot)];
    return UnmarshalTop(item.pres, item.type, slot, r, arena, special,
                        borrow_bytes);
  }
  const Type* resolved = item.type->Resolve();
  if (item.is_result && resolved->kind() == TypeKind::kUnion) {
    FLEXRPC_ASSIGN_OR_RETURN(uint32_t disc, r->GetU32());
    (*args)[static_cast<size_t>(item.disc_slot)].scalar = disc;
    if (disc != item.success_label) {
      return Status::Ok();
    }
  }
  for (const FieldSlot& field : item.fields) {
    ArgValue* slot = &(*args)[static_cast<size_t>(field.slot)];
    FLEXRPC_RETURN_IF_ERROR(UnmarshalTop(field.pres, field.type, slot, r,
                                         arena, special, borrow_bytes));
  }
  return Status::Ok();
}

Status MarshalProgram::MarshalTop(const ParamPresentation* pres,
                                  const Type* type, const ArgValue& slot,
                                  uint32_t explicit_len, WireWriter* w,
                                  const SpecialOps* special) const {
  const Type* t = type->Resolve();
  bool use_special = pres != nullptr && pres->special &&
                     special != nullptr && special->copy_out != nullptr;
  if (TraceEnabled()) {
    TraceAdd(MarshalOpCounter(t, use_special));
    // Payload accounting: variable-length kinds by their wire length,
    // everything else by native size (recursive struct internals are
    // attributed to the top-level op).
    size_t bytes;
    switch (t->kind()) {
      case TypeKind::kVoid:
        bytes = 0;
        break;
      case TypeKind::kString:
        bytes = explicit_len;
        break;
      case TypeKind::kSequence:
        bytes = explicit_len *
                (IsByteElem(t->element()) ? 1 : t->element()->NativeSize());
        break;
      default:
        bytes = t->NativeSize();
    }
    TraceAdd(TraceCounter::kMarshalBytesOut, bytes);
  }
  switch (t->kind()) {
    case TypeKind::kVoid:
      return Status::Ok();
    case TypeKind::kString: {
      const char* s = static_cast<const char*>(slot.ptr());
      uint32_t len = explicit_len;
      if (t->bound() != 0 && len > t->bound()) {
        return InvalidArgumentError(
            StrFormat("string length %u exceeds bound %u", len, t->bound()));
      }
      w->PutU32(len);
      if (use_special) {
        special->copy_out(w->ReserveBytes(len), s, len);
      } else {
        w->PutBytes(s, len);
      }
      return Status::Ok();
    }
    case TypeKind::kSequence: {
      uint32_t len = explicit_len;
      if (t->bound() != 0 && len > t->bound()) {
        return InvalidArgumentError(
            StrFormat("sequence length %u exceeds bound %u", len,
                      t->bound()));
      }
      w->PutU32(len);
      const Type* elem = t->element();
      if (IsByteElem(elem)) {
        if (use_special) {
          special->copy_out(w->ReserveBytes(len), slot.ptr(), len);
        } else {
          w->PutBytes(slot.ptr(), len);
        }
        return Status::Ok();
      }
      size_t stride = elem->NativeSize();
      const auto* base = static_cast<const uint8_t*>(slot.ptr());
      for (uint32_t i = 0; i < len; ++i) {
        FLEXRPC_RETURN_IF_ERROR(MarshalValue(w, elem, base + i * stride));
      }
      return Status::Ok();
    }
    case TypeKind::kArray: {
      const Type* elem = t->element();
      if (IsByteElem(elem)) {
        if (use_special) {
          special->copy_out(w->ReserveBytes(t->bound()), slot.ptr(),
                            t->bound());
        } else {
          w->PutBytes(slot.ptr(), t->bound());
        }
        return Status::Ok();
      }
      size_t stride = elem->NativeSize();
      const auto* base = static_cast<const uint8_t*>(slot.ptr());
      for (uint32_t i = 0; i < t->bound(); ++i) {
        FLEXRPC_RETURN_IF_ERROR(MarshalValue(w, elem, base + i * stride));
      }
      return Status::Ok();
    }
    case TypeKind::kStruct:
    case TypeKind::kUnion:
      return MarshalValue(w, t, slot.ptr());
    default:
      PutScalarWire(w, t, slot.scalar);
      return Status::Ok();
  }
}

Status MarshalProgram::UnmarshalTop(const ParamPresentation* pres,
                                    const Type* type, ArgValue* slot,
                                    WireReader* r, Arena* arena,
                                    const SpecialOps* special,
                                    bool borrow_bytes) const {
  const Type* t = type->Resolve();
  bool use_special = pres != nullptr && pres->special &&
                     special != nullptr && special->copy_in != nullptr;
  TraceAdd(MarshalOpCounter(t, use_special));
  // A slot that already carries a destination pointer is caller storage:
  // [alloc(user)] receive buffers and [special] user-space destinations both
  // arrive this way. Otherwise the stub allocates from the receiving arena.
  bool caller_buffer = slot->ptr() != nullptr;
  switch (t->kind()) {
    case TypeKind::kVoid:
      return Status::Ok();
    case TypeKind::kString: {
      FLEXRPC_ASSIGN_OR_RETURN(uint32_t len, r->GetU32());
      if (t->bound() != 0 && len > t->bound()) {
        return DataLossError(
            StrFormat("wire string length %u exceeds bound %u", len,
                      t->bound()));
      }
      FLEXRPC_ASSIGN_OR_RETURN(const uint8_t* bytes, r->GetBytes(len));
      TraceAdd(TraceCounter::kMarshalBytesIn, len);
      char* dest;
      if (caller_buffer) {
        if (slot->capacity < len + 1) {
          return ResourceExhaustedError(
              StrFormat("caller buffer (%u bytes) too small for %u-byte "
                        "string",
                        slot->capacity, len));
        }
        dest = static_cast<char*>(slot->ptr());
      } else {
        dest = static_cast<char*>(arena->AllocateBlock(len + 1));
        slot->set_ptr(dest);
      }
      if (use_special) {
        special->copy_in(dest, bytes, len);
      } else {
        std::memcpy(dest, bytes, len);
      }
      dest[len] = '\0';
      slot->length = len;
      return Status::Ok();
    }
    case TypeKind::kSequence: {
      FLEXRPC_ASSIGN_OR_RETURN(uint32_t len, r->GetU32());
      if (t->bound() != 0 && len > t->bound()) {
        return DataLossError(
            StrFormat("wire sequence length %u exceeds bound %u", len,
                      t->bound()));
      }
      const Type* elem = t->element();
      TraceAdd(TraceCounter::kMarshalBytesIn,
               len * (IsByteElem(elem) ? 1 : elem->NativeSize()));
      if (IsByteElem(elem)) {
        FLEXRPC_ASSIGN_OR_RETURN(const uint8_t* bytes, r->GetBytes(len));
        if (borrow_bytes && !caller_buffer && !use_special) {
          // In-place view of the request message: zero-copy unmarshal.
          slot->set_ptr(bytes);
          slot->length = len;
          slot->borrowed = true;
          return Status::Ok();
        }
        void* dest;
        if (caller_buffer) {
          if (slot->capacity < len) {
            return ResourceExhaustedError(
                StrFormat("caller buffer (%u bytes) too small for %u-byte "
                          "sequence",
                          slot->capacity, len));
          }
          dest = slot->ptr();
        } else {
          dest = arena->AllocateBlock(len > 0 ? len : 1);
          slot->set_ptr(dest);
        }
        if (use_special) {
          special->copy_in(dest, bytes, len);
        } else {
          std::memcpy(dest, bytes, len);
        }
        slot->length = len;
        return Status::Ok();
      }
      size_t stride = elem->NativeSize();
      uint8_t* base;
      if (caller_buffer) {
        if (slot->capacity < len) {
          return ResourceExhaustedError(
              "caller buffer too small for sequence");
        }
        base = static_cast<uint8_t*>(slot->ptr());
      } else {
        base = static_cast<uint8_t*>(
            arena->AllocateBlock(len > 0 ? len * stride : 1));
        slot->set_ptr(base);
      }
      for (uint32_t i = 0; i < len; ++i) {
        FLEXRPC_RETURN_IF_ERROR(
            UnmarshalValue(r, elem, base + i * stride, arena));
      }
      slot->length = len;
      return Status::Ok();
    }
    case TypeKind::kArray: {
      const Type* elem = t->element();
      size_t total = t->NativeSize();
      TraceAdd(TraceCounter::kMarshalBytesIn, total);
      uint8_t* dest;
      if (caller_buffer || slot->ptr() != nullptr) {
        // Fixed-size data goes into provided storage when there is any.
        dest = static_cast<uint8_t*>(slot->ptr());
      } else {
        dest = static_cast<uint8_t*>(arena->AllocateBlock(total));
        slot->set_ptr(dest);
      }
      if (IsByteElem(elem)) {
        FLEXRPC_ASSIGN_OR_RETURN(const uint8_t* bytes,
                                 r->GetBytes(t->bound()));
        if (use_special) {
          special->copy_in(dest, bytes, t->bound());
        } else {
          std::memcpy(dest, bytes, t->bound());
        }
        return Status::Ok();
      }
      size_t stride = elem->NativeSize();
      for (uint32_t i = 0; i < t->bound(); ++i) {
        FLEXRPC_RETURN_IF_ERROR(
            UnmarshalValue(r, elem, dest + i * stride, arena));
      }
      return Status::Ok();
    }
    case TypeKind::kStruct:
    case TypeKind::kUnion: {
      TraceAdd(TraceCounter::kMarshalBytesIn, t->NativeSize());
      void* dest;
      if (caller_buffer || slot->ptr() != nullptr) {
        dest = slot->ptr();
      } else {
        dest = arena->AllocateBlock(t->NativeSize());
        slot->set_ptr(dest);
      }
      return UnmarshalValue(r, t, dest, arena);
    }
    default: {
      FLEXRPC_ASSIGN_OR_RETURN(uint64_t bits, GetScalarWire(r, t));
      TraceAdd(TraceCounter::kMarshalBytesIn, t->NativeSize());
      slot->scalar = bits;
      return Status::Ok();
    }
  }
}

void MarshalProgram::DeallocAfterMarshal(const Item& item,
                                         const ArgVec& args,
                                         Arena* arena) const {
  auto release = [&](const ParamPresentation* pres, const Type* type,
                     const ArgValue& slot) {
    if (pres == nullptr || pres->dealloc != DeallocPolicy::kAlways) {
      return;
    }
    void* p = slot.ptr();
    if (p == nullptr) {
      return;
    }
    const Type* t = type->Resolve();
    if (t->kind() == TypeKind::kStruct || t->kind() == TypeKind::kUnion ||
        t->kind() == TypeKind::kArray) {
      FreeValue(arena, t, p);
    }
    arena->FreeBlock(p);
  };
  if (!item.flattened) {
    release(item.pres, item.type, args[static_cast<size_t>(item.slot)]);
    return;
  }
  for (const FieldSlot& field : item.fields) {
    release(field.pres, field.type, args[static_cast<size_t>(field.slot)]);
  }
}

void MarshalProgram::ReleaseRequest(Arena* arena, ArgVec* args) const {
  auto release = [&](const Type* type, ArgValue* slot) {
    if (!OwnsHeapStorage(type) || slot->ptr() == nullptr) {
      return;
    }
    if (slot->borrowed) {
      slot->set_ptr(nullptr);
      slot->borrowed = false;
      return;
    }
    const Type* t = type->Resolve();
    if (t->kind() == TypeKind::kStruct || t->kind() == TypeKind::kUnion ||
        t->kind() == TypeKind::kArray) {
      FreeValue(arena, t, slot->ptr());
    }
    arena->FreeBlock(slot->ptr());
    slot->set_ptr(nullptr);
  };
  for (const Item& item : request_items_) {
    if (!item.flattened) {
      release(item.type, &(*args)[static_cast<size_t>(item.slot)]);
      continue;
    }
    for (const FieldSlot& field : item.fields) {
      release(field.type, &(*args)[static_cast<size_t>(field.slot)]);
    }
  }
}

void MarshalProgram::ReleaseReply(Arena* arena, ArgVec* args) const {
  auto release = [&](const ParamPresentation* pres, const Type* type,
                     ArgValue* slot) {
    if (!OwnsHeapStorage(type) || slot->ptr() == nullptr) {
      return;
    }
    if (pres != nullptr && pres->alloc == AllocPolicy::kUser) {
      return;  // caller-provided storage is the caller's to manage
    }
    const Type* t = type->Resolve();
    if (t->kind() == TypeKind::kStruct || t->kind() == TypeKind::kUnion ||
        t->kind() == TypeKind::kArray) {
      FreeValue(arena, t, slot->ptr());
    }
    arena->FreeBlock(slot->ptr());
    slot->set_ptr(nullptr);
  };
  for (const Item& item : reply_items_) {
    if (!item.flattened) {
      release(item.pres, item.type, &(*args)[static_cast<size_t>(item.slot)]);
      continue;
    }
    for (const FieldSlot& field : item.fields) {
      release(field.pres, field.type,
              &(*args)[static_cast<size_t>(field.slot)]);
    }
  }
}

}  // namespace flexrpc
