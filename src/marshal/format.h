// Wire-format abstraction for the marshal engine.
//
// A WireWriter/WireReader pair defines one on-the-wire representation.
// Two formats are provided:
//   * XDR (RFC 1014): Sun RPC's format — big-endian, every item padded to a
//     4-byte boundary, small scalars widened to 32 bits (src/marshal/xdr.h).
//   * Native: a compact little-endian format used for intra-machine IPC
//     messages, where both sides share byte order (src/marshal/native.h).
//
// The contract between client and server fixes the *format and item order*;
// presentations only change where the bytes come from / go to.

#ifndef FLEXRPC_SRC_MARSHAL_FORMAT_H_
#define FLEXRPC_SRC_MARSHAL_FORMAT_H_

#include <cstdint>
#include <vector>

#include "src/support/bytes.h"
#include "src/support/status.h"

namespace flexrpc {

class WireWriter {
 public:
  virtual ~WireWriter() = default;

  virtual void PutU8(uint8_t v) = 0;
  virtual void PutU16(uint16_t v) = 0;
  virtual void PutU32(uint32_t v) = 0;
  virtual void PutU64(uint64_t v) = 0;
  void PutF32(float v);
  void PutF64(double v);

  // Appends `n` raw bytes (plus any format padding).
  virtual void PutBytes(const void* src, size_t n) = 0;

  // Reserves a padded `n`-byte region and returns a pointer to fill in.
  // The pointer is invalidated by the next Put/Reserve call. This is the
  // hook [special] marshaling uses to copy via user routines without an
  // intermediate buffer.
  virtual uint8_t* ReserveBytes(size_t n) = 0;

  virtual size_t size() const = 0;
  virtual ByteSpan span() const = 0;
  virtual void Clear() = 0;
};

class WireReader {
 public:
  virtual ~WireReader() = default;

  virtual Result<uint8_t> GetU8() = 0;
  virtual Result<uint16_t> GetU16() = 0;
  virtual Result<uint32_t> GetU32() = 0;
  virtual Result<uint64_t> GetU64() = 0;
  Result<float> GetF32();
  Result<double> GetF64();

  // Returns a view of the next `n` payload bytes (consuming any padding).
  virtual Result<const uint8_t*> GetBytes(size_t n) = 0;

  virtual size_t remaining() const = 0;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_MARSHAL_FORMAT_H_
