#include "src/marshal/xdr.h"

#include <cstring>

namespace flexrpc {

namespace {
size_t PadTo4(size_t n) { return (n + 3) & ~size_t{3}; }
}  // namespace

void XdrWriter::PutU32(uint32_t v) {
  buffer_.push_back(static_cast<uint8_t>(v >> 24));
  buffer_.push_back(static_cast<uint8_t>(v >> 16));
  buffer_.push_back(static_cast<uint8_t>(v >> 8));
  buffer_.push_back(static_cast<uint8_t>(v));
}

void XdrWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v >> 32));
  PutU32(static_cast<uint32_t>(v));
}

void XdrWriter::PutBytes(const void* src, size_t n) {
  const auto* p = static_cast<const uint8_t*>(src);
  buffer_.insert(buffer_.end(), p, p + n);
  buffer_.insert(buffer_.end(), PadTo4(n) - n, 0);
}

uint8_t* XdrWriter::ReserveBytes(size_t n) {
  size_t offset = buffer_.size();
  buffer_.resize(offset + PadTo4(n), 0);
  return buffer_.data() + offset;
}

Result<uint32_t> XdrReader::GetU32() {
  if (remaining() < 4) {
    return DataLossError("XDR stream truncated reading u32");
  }
  uint32_t v = static_cast<uint32_t>(data_[pos_]) << 24 |
               static_cast<uint32_t>(data_[pos_ + 1]) << 16 |
               static_cast<uint32_t>(data_[pos_ + 2]) << 8 |
               static_cast<uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

Result<uint64_t> XdrReader::GetU64() {
  FLEXRPC_ASSIGN_OR_RETURN(uint64_t hi, GetU32());
  FLEXRPC_ASSIGN_OR_RETURN(uint64_t lo, GetU32());
  return (hi << 32) | lo;
}

Result<const uint8_t*> XdrReader::GetBytes(size_t n) {
  size_t padded = PadTo4(n);
  if (remaining() < padded) {
    return DataLossError("XDR stream truncated reading opaque bytes");
  }
  const uint8_t* p = data_.data() + pos_;
  pos_ += padded;
  return p;
}

}  // namespace flexrpc
