// Compact native (little-endian, unpadded) wire format for intra-machine
// IPC messages, where sender and receiver share a byte order and the
// message buffer is copied verbatim between address spaces by the kernel.

#ifndef FLEXRPC_SRC_MARSHAL_NATIVE_H_
#define FLEXRPC_SRC_MARSHAL_NATIVE_H_

#include "src/marshal/format.h"

namespace flexrpc {

class NativeWriter final : public WireWriter {
 public:
  void PutU8(uint8_t v) override { buffer_.push_back(v); }
  void PutU16(uint16_t v) override { Append(&v, sizeof(v)); }
  void PutU32(uint32_t v) override { Append(&v, sizeof(v)); }
  void PutU64(uint64_t v) override { Append(&v, sizeof(v)); }
  void PutBytes(const void* src, size_t n) override { Append(src, n); }
  uint8_t* ReserveBytes(size_t n) override {
    size_t offset = buffer_.size();
    buffer_.resize(offset + n);
    return buffer_.data() + offset;
  }
  size_t size() const override { return buffer_.size(); }
  ByteSpan span() const override {
    return ByteSpan(buffer_.data(), buffer_.size());
  }
  void Clear() override { buffer_.clear(); }

 private:
  void Append(const void* src, size_t n);

  std::vector<uint8_t> buffer_;
};

class NativeReader final : public WireReader {
 public:
  explicit NativeReader(ByteSpan data) : data_(data) {}

  Result<uint8_t> GetU8() override { return Read<uint8_t>(); }
  Result<uint16_t> GetU16() override { return Read<uint16_t>(); }
  Result<uint32_t> GetU32() override { return Read<uint32_t>(); }
  Result<uint64_t> GetU64() override { return Read<uint64_t>(); }
  Result<const uint8_t*> GetBytes(size_t n) override;
  size_t remaining() const override { return data_.size() - pos_; }

 private:
  template <typename T>
  Result<T> Read();

  ByteSpan data_;
  size_t pos_ = 0;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_MARSHAL_NATIVE_H_
