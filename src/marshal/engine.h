// The presentation-aware marshal engine: flexrpc's runtime stub bodies.
//
// A MarshalProgram is compiled once per (operation, presentation) pair at
// bind time — the moral equivalent of the paper's threaded-code combination
// signatures — and then executed per call. The wire layout it produces is a
// pure function of the *interface* (items in IDL order, request = in/inout
// params, reply = inout/out params then the result), so endpoints with
// different presentations interoperate byte-for-byte. The presentation only
// chooses where bytes come from and go to:
//   * which ArgVec slot carries each wire item (flattened struct fields vs.
//     a whole struct pointer),
//   * whether buffer lengths are implicit (NUL) or explicit (length slot),
//   * whether byte runs move through memcpy or [special] user routines,
//   * whether receive buffers are caller-provided ([alloc(user)]) or
//     allocated from the receiving arena,
//   * whether the producing stub frees buffers after marshaling
//     ([dealloc(always)] move semantics vs [dealloc(never)]).

#ifndef FLEXRPC_SRC_MARSHAL_ENGINE_H_
#define FLEXRPC_SRC_MARSHAL_ENGINE_H_

#include <functional>
#include <string>
#include <vector>

#include "src/idl/ast.h"
#include "src/marshal/format.h"
#include "src/pdl/presentation.h"
#include "src/support/arena.h"
#include "src/support/status.h"

namespace flexrpc {

// One stub-level argument slot. Scalars live in `scalar`; buffer-like and
// structured values store a pointer in `scalar` with `length` (element
// count) and `capacity` (receive capacity, elements) alongside.
struct ArgValue {
  uint64_t scalar = 0;
  uint32_t length = 0;
  uint32_t capacity = 0;
  // True when ptr() aliases the transport's message buffer instead of
  // owning a block (server-side in-place unmarshaling); such slots are
  // never freed by ReleaseRequest.
  bool borrowed = false;

  void* ptr() const { return reinterpret_cast<void*>(scalar); }
  void set_ptr(const void* p) {
    scalar = reinterpret_cast<uint64_t>(p);
  }
};

// The argument vector a runtime stub operates on: one slot per presentation
// parameter, plus a final slot for the operation result. Small vectors
// (the overwhelmingly common case) live entirely on the stack, as the
// storage of a compiled stub would.
class ArgVec {
 public:
  explicit ArgVec(size_t slot_count) : size_(slot_count) {
    if (slot_count > kInlineSlots) {
      heap_ = new ArgValue[slot_count]();
    }
  }
  ~ArgVec() { delete[] heap_; }

  ArgVec(const ArgVec&) = delete;
  ArgVec& operator=(const ArgVec&) = delete;

  ArgValue& operator[](size_t i) { return data()[i]; }
  const ArgValue& operator[](size_t i) const { return data()[i]; }
  size_t size() const { return size_; }
  void Reset() { std::fill(data(), data() + size_, ArgValue{}); }

 private:
  static constexpr size_t kInlineSlots = 12;

  ArgValue* data() { return heap_ != nullptr ? heap_ : inline_; }
  const ArgValue* data() const {
    return heap_ != nullptr ? heap_ : inline_;
  }

  size_t size_;
  ArgValue inline_[kInlineSlots] = {};
  ArgValue* heap_ = nullptr;
};

// User-provided byte movers for [special] parameters (the paper's Linux
// copyin/copyout routines, or fbuf access routines).
struct SpecialOps {
  // Copies `n` application bytes at `src` into wire storage `dst`.
  std::function<void(uint8_t* dst, const void* src, size_t n)> copy_out;
  // Copies `n` wire bytes at `src` into application storage `dst`.
  std::function<void(void* dst, const uint8_t* src, size_t n)> copy_in;
};

// Read-only structural view of a compiled MarshalProgram: the wire-item
// streams a program would execute, with the slot each item reads or writes.
// This is the surface the flexcheck plan verifier (src/analysis/) audits
// like a bytecode verifier; tests hand-build or corrupt a view to prove
// each violation is caught.
struct PlanFieldView {
  const Type* type = nullptr;
  int slot = -1;
  const ParamPresentation* pres = nullptr;
};

struct PlanItemView {
  const Type* type = nullptr;  // wire type of the whole item
  ParamDir dir = ParamDir::kIn;
  bool is_result = false;
  bool flattened = false;
  int slot = -1;  // direct slot; -1 when flattened
  const ParamPresentation* pres = nullptr;
  std::vector<PlanFieldView> fields;  // flattened struct fields, in order
  int disc_slot = -1;  // flattened union result discriminant
  uint32_t success_label = 0;  // label of the struct-carrying arm
  const Type* success_struct = nullptr;
};

struct MarshalPlanView {
  size_t slot_count = 0;
  std::vector<PlanItemView> request;
  std::vector<PlanItemView> reply;
};

// flexspec fast path (src/marshal/spec.h): Build looks the plan's SpecKey
// up in the specialization registry once; per call the entry points
// dispatch to the registered straight-line function when present and
// enabled, interpreting otherwise.
struct SpecFns;
struct MarshalProfileCell;

class MarshalProgram {
 public:
  // Compiles the program for one operation under one side's presentation.
  // `op` and `pres` must outlive the program.
  static MarshalProgram Build(const OperationDecl& op,
                              const OpPresentation& pres);

  // --- client side ---
  Status MarshalRequest(const ArgVec& args, WireWriter* w,
                        const SpecialOps* special = nullptr) const;
  Status UnmarshalReply(WireReader* r, Arena* arena, ArgVec* args,
                        const SpecialOps* special = nullptr) const;

  // --- server side ---
  // Byte-buffer in-parameters are unmarshaled *in place*: their slots
  // alias the request message (which a synchronous server owns for the
  // call's duration) rather than copying into fresh blocks — the standard
  // trick of efficient server stubs. Strings are still copied (they need
  // NUL termination). Pass borrow_bytes=false to force copies when the
  // request buffer does not outlive the ArgVec.
  Status UnmarshalRequest(WireReader* r, Arena* arena, ArgVec* args,
                          const SpecialOps* special = nullptr,
                          bool borrow_bytes = true) const;
  Status MarshalReply(const ArgVec& args, WireWriter* w, Arena* arena,
                      const SpecialOps* special = nullptr) const;

  // Frees the storage UnmarshalRequest allocated from `arena` (server stub
  // epilogue). Slots pointing at caller-provided storage are untouched.
  void ReleaseRequest(Arena* arena, ArgVec* args) const;
  // Frees stub-allocated reply storage on the client (the "client frees the
  // donated buffer" step of move semantics).
  void ReleaseReply(Arena* arena, ArgVec* args) const;

  // Slot bookkeeping. Result occupies the final slot.
  size_t slot_count() const { return slot_count_; }
  int result_slot() const { return static_cast<int>(slot_count_) - 1; }
  // Slot of a named presentation parameter, -1 if absent.
  int SlotOf(std::string_view name) const;

  const OperationDecl& op() const { return *op_; }
  const OpPresentation& presentation() const { return *pres_; }

  // Snapshot of the compiled item streams for the plan verifier.
  MarshalPlanView Plan() const;

  // True when Build found a registered flexspec specialization for this
  // (operation, presentation) key. Dispatch is per entry point (a
  // registration may cover only some streams) and still honors the
  // global SetMarshalSpecializationEnabled switch.
  bool specialized() const { return spec_fns_ != nullptr; }

 private:
  // One wire item of the request or reply stream.
  struct FieldSlot {
    const Type* type = nullptr;
    int slot = -1;
    const ParamPresentation* pres = nullptr;
  };
  struct Item {
    const Type* type = nullptr;       // wire type of the whole item
    ParamDir dir = ParamDir::kIn;
    bool is_result = false;
    int slot = -1;                    // direct slot; -1 when flattened
    const ParamPresentation* pres = nullptr;  // direct-slot presentation
    bool flattened = false;
    std::vector<FieldSlot> fields;    // flattened struct fields, in order
    int disc_slot = -1;               // flattened union result discriminant
    uint32_t success_label = 0;       // label of the struct-carrying arm
    const Type* success_struct = nullptr;
  };

  Status MarshalItem(const Item& item, const ArgVec& args, WireWriter* w,
                     const SpecialOps* special) const;
  Status UnmarshalItem(const Item& item, WireReader* r, Arena* arena,
                       ArgVec* args, const SpecialOps* special,
                       bool borrow_bytes) const;
  Status MarshalTop(const ParamPresentation* pres, const Type* type,
                    const ArgValue& slot, uint32_t explicit_len,
                    WireWriter* w, const SpecialOps* special) const;
  Status UnmarshalTop(const ParamPresentation* pres, const Type* type,
                      ArgValue* slot, WireReader* r, Arena* arena,
                      const SpecialOps* special, bool borrow_bytes) const;
  void DeallocAfterMarshal(const Item& item, const ArgVec& args,
                           Arena* arena) const;
  // Length of a buffer-like value, honoring [length_is].
  uint32_t EffectiveLength(const ParamPresentation* pres, const Type* type,
                           const ArgValue& slot, const ArgVec& args) const;

  const OperationDecl* op_ = nullptr;
  const OpPresentation* pres_ = nullptr;
  size_t slot_count_ = 0;
  std::vector<Item> request_items_;
  std::vector<Item> reply_items_;
  const SpecFns* spec_fns_ = nullptr;       // registry hit, or null
  MarshalProfileCell* profile_ = nullptr;   // interned per-key counters
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_MARSHAL_ENGINE_H_
