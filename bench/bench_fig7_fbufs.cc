// Figure 7 — "Performance of the Basic Pipe Server" over fbufs.
//
// The same pipe workload as Figure 6, but with fbufs as the transport:
//   * standard presentation: fbufs act as a pairwise LRPC-like shared
//     memory channel; the server stubs copy data between fbufs and the
//     circular buffer (two copies per direction inside the server);
//   * [special] presentation: the pipe server keeps all data in fbufs end
//     to end — writes splice incoming aggregates onto the queue, reads
//     split a prefix off; zero server copies.
// The 4.3BSD monolithic pipe (one copyin + one copyout, 4K buffers) is
// shown for reference, as in the paper.
//
// Paper result: +92% (4K) / +160% (8K) from the [special] presentation.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/pipe.h"
#include "src/support/timing.h"

namespace {

using flexrpc::PipeServerFbuf;

double MeasureFbufPipeMBps(PipeServerFbuf::Presentation pres,
                           size_t capacity, size_t total) {
  flexrpc::Kernel kernel;
  flexrpc::Arena shared("shared-path");
  flexrpc::Arena server_arena("pipe-server");
  flexrpc::FbufChannel channel(&kernel, &shared, 4096, 512);
  PipeServerFbuf server(&channel, pres, &server_arena, capacity);

  std::vector<uint8_t> chunk(capacity, 0x5A);
  std::vector<uint8_t> sink(capacity);
  auto pump = [&](size_t bytes) {
    size_t written = 0;
    size_t read = 0;
    while (read < bytes) {
      if (written < bytes) {
        size_t accepted = 0;
        if (!flexrpc::FbufPipeWrite(&channel, chunk.data(), capacity,
                                    &accepted)
                 .ok()) {
          std::abort();
        }
        written += accepted;
      }
      size_t got = 0;
      if (!flexrpc::FbufPipeRead(&channel, sink.data(), capacity, &got)
               .ok()) {
        std::abort();
      }
      read += got;
    }
  };
  pump(total / 8);  // warm-up
  flexrpc::Stopwatch timer;
  pump(total);
  return static_cast<double>(total) / timer.ElapsedSeconds() / 1e6;
}

double MeasureMonolithicMBps(size_t total) {
  flexrpc::Kernel kernel;
  flexrpc::Arena kernel_space("kernel");
  flexrpc::AddressSpace writer("writer");
  flexrpc::AddressSpace reader("reader");
  // 4.3BSD pipes: buffers are always 4K.
  flexrpc::MonolithicPipe pipe(&kernel, &kernel_space, 4096);
  auto* wbuf = static_cast<uint8_t*>(writer.Allocate(4096));
  auto* rbuf = static_cast<uint8_t*>(reader.Allocate(4096));
  std::memset(wbuf, 0x5A, 4096);
  auto pump = [&](size_t bytes) {
    size_t read = 0;
    while (read < bytes) {
      pipe.Write(&writer, wbuf, 4096);
      read += pipe.Read(&reader, rbuf, 4096);
    }
  };
  pump(total / 8);
  flexrpc::Stopwatch timer;
  pump(total);
  double mbps = static_cast<double>(total) / timer.ElapsedSeconds() / 1e6;
  writer.Free(wbuf);
  reader.Free(rbuf);
  return mbps;
}

void BM_FbufPipe(benchmark::State& state) {
  auto pres = static_cast<PipeServerFbuf::Presentation>(state.range(0));
  size_t capacity = static_cast<size_t>(state.range(1));
  flexrpc::Kernel kernel;
  flexrpc::Arena shared("shared-path");
  flexrpc::Arena server_arena("pipe-server");
  flexrpc::FbufChannel channel(&kernel, &shared, 4096, 512);
  PipeServerFbuf server(&channel, pres, &server_arena, capacity);
  std::vector<uint8_t> chunk(capacity, 0x5A);
  std::vector<uint8_t> sink(capacity);
  for (auto _ : state) {
    size_t accepted = 0;
    size_t got = 0;
    (void)flexrpc::FbufPipeWrite(&channel, chunk.data(), capacity,
                                 &accepted);
    (void)flexrpc::FbufPipeRead(&channel, sink.data(), capacity, &got);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * capacity));
}

}  // namespace

BENCHMARK(BM_FbufPipe)
    ->Args({static_cast<int>(PipeServerFbuf::Presentation::kStandard),
            4096})
    ->Args({static_cast<int>(PipeServerFbuf::Presentation::kSpecial),
            4096})
    ->Args({static_cast<int>(PipeServerFbuf::Presentation::kStandard),
            8192})
    ->Args({static_cast<int>(PipeServerFbuf::Presentation::kSpecial),
            8192})
    ->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  flexrpc_bench::BenchHarness harness("fig7_fbufs", &argc, argv);
  harness.RunMicrobenchmarks();

  using flexrpc_bench::Bar;
  using flexrpc_bench::PercentMore;
  using flexrpc_bench::PrintHeader;
  using flexrpc_bench::PrintRule;

  PrintHeader(
      "Figure 7: pipe server over fbufs — standard vs [special] server "
      "presentation");
  const size_t kTotal = harness.bytes(128u << 20, 1u << 20);
  const int kReps = harness.reps(3);

  double mono =
      harness.BestOf(kReps, /*smaller_is_better=*/false,
                     [&] { return MeasureMonolithicMBps(kTotal); });

  for (size_t capacity : {size_t{4096}, size_t{8192}}) {
    double standard = harness.BestOf(
        kReps, /*smaller_is_better=*/false, [&] {
          return MeasureFbufPipeMBps(
              PipeServerFbuf::Presentation::kStandard, capacity, kTotal);
        });
    double special = harness.BestOf(
        kReps, /*smaller_is_better=*/false, [&] {
          return MeasureFbufPipeMBps(
              PipeServerFbuf::Presentation::kSpecial, capacity, kTotal);
        });
    double max = special > mono ? special : mono;
    std::printf("%zuK pipe, standard presentation  %8.1f MB/s  %s\n",
                capacity / 1024, standard, Bar(standard, max, 30).c_str());
    std::printf("%zuK pipe, [special] fbuf-aware   %8.1f MB/s  %s\n",
                capacity / 1024, special, Bar(special, max, 30).c_str());
    std::printf("  improvement: %.1f%%   (paper: %s)\n\n",
                PercentMore(standard, special),
                capacity == 4096 ? "92%" : "160%");
    std::string key = std::to_string(capacity / 1024) + "K";
    harness.Report(key + "_standard_MBps", standard, "MB/s");
    harness.Report(key + "_special_MBps", special, "MB/s");
    harness.Report(key + "_improvement_pct", PercentMore(standard, special),
                   "%");
  }
  std::printf("reference: monolithic 4.3BSD pipe  %8.1f MB/s  %s\n", mono,
              Bar(mono, mono, 30).c_str());
  PrintRule();
  harness.Report("monolithic_MBps", mono, "MB/s");
  return harness.Finish();
}
