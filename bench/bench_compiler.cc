// Compiler-pipeline benchmark (sanity, not a paper figure): the cost of
// each stage of the stub compiler — parsing, PDL application, signature
// derivation, marshal-program compilation, and C++ emission — plus the
// per-call cost of the compiled marshal programs on the SysLog and NFS
// workloads.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/analysis/spec_verifier.h"
#include "src/apps/nfs.h"
#include "src/codegen/cpp_gen.h"
#include "src/marshal/spec.h"
#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/idl/sunrpc_parser.h"
#include "src/marshal/xdr.h"
#include "src/pdl/apply.h"
#include "src/sig/signature.h"

namespace {

void BM_ParseNfsIdl(benchmark::State& state) {
  for (auto _ : state) {
    flexrpc::DiagnosticSink diags;
    auto idl = flexrpc::ParseSunRpc(flexrpc::NfsIdlText(), "nfs.x", &diags);
    benchmark::DoNotOptimize(idl);
  }
}

void BM_AnalyzeAndPresent(benchmark::State& state) {
  for (auto _ : state) {
    flexrpc::DiagnosticSink diags;
    auto idl = flexrpc::ParseSunRpc(flexrpc::NfsIdlText(), "nfs.x", &diags);
    (void)flexrpc::AnalyzeInterfaceFile(idl.get(), &diags);
    flexrpc::PresentationSet pres;
    (void)flexrpc::ApplyPdlText(*idl, flexrpc::Side::kClient,
                                flexrpc::NfsClientPdlText(), "nfs.pdl",
                                &pres, &diags);
    benchmark::DoNotOptimize(pres);
  }
}

void BM_BuildSignature(benchmark::State& state) {
  flexrpc::DiagnosticSink diags;
  auto idl = flexrpc::ParseSunRpc(flexrpc::NfsIdlText(), "nfs.x", &diags);
  (void)flexrpc::AnalyzeInterfaceFile(idl.get(), &diags);
  for (auto _ : state) {
    auto sig = flexrpc::BuildSignature(idl->interfaces[0]);
    benchmark::DoNotOptimize(flexrpc::SignatureHash(sig));
  }
}

void BM_BuildMarshalProgram(benchmark::State& state) {
  flexrpc::DiagnosticSink diags;
  auto idl = flexrpc::ParseSunRpc(flexrpc::NfsIdlText(), "nfs.x", &diags);
  (void)flexrpc::AnalyzeInterfaceFile(idl.get(), &diags);
  flexrpc::PresentationSet pres;
  (void)flexrpc::ApplyPdlText(*idl, flexrpc::Side::kClient,
                              flexrpc::NfsClientPdlText(), "nfs.pdl",
                              &pres, &diags);
  const flexrpc::OperationDecl& op = idl->interfaces[0].ops[0];
  const flexrpc::OpPresentation& op_pres =
      *pres.Find("NFS_VERSION")->FindOp("NFSPROC_READ");
  for (auto _ : state) {
    auto prog = flexrpc::MarshalProgram::Build(op, op_pres);
    benchmark::DoNotOptimize(prog.slot_count());
  }
}

void BM_GenerateCpp(benchmark::State& state) {
  flexrpc::DiagnosticSink diags;
  auto idl = flexrpc::ParseSunRpc(flexrpc::NfsIdlText(), "nfs.x", &diags);
  (void)flexrpc::AnalyzeInterfaceFile(idl.get(), &diags);
  flexrpc::PresentationSet client;
  flexrpc::PresentationSet server;
  (void)flexrpc::ApplyPdlText(*idl, flexrpc::Side::kClient,
                              flexrpc::NfsClientPdlText(), "nfs.pdl",
                              &client, &diags);
  (void)flexrpc::ApplyPdl(*idl, flexrpc::Side::kServer, nullptr, &server,
                          &diags);
  flexrpc::CppGenOptions options;
  options.header_name = "nfs.flexgen.h";
  for (auto _ : state) {
    auto generated = flexrpc::GenerateCpp(*idl, client, server, options);
    benchmark::DoNotOptimize(generated->header.size());
  }
}

void BM_MarshalNfsRequest(benchmark::State& state) {
  flexrpc::DiagnosticSink diags;
  auto idl = flexrpc::ParseSunRpc(flexrpc::NfsIdlText(), "nfs.x", &diags);
  (void)flexrpc::AnalyzeInterfaceFile(idl.get(), &diags);
  flexrpc::PresentationSet pres;
  (void)flexrpc::ApplyPdlText(*idl, flexrpc::Side::kClient,
                              flexrpc::NfsClientPdlText(), "nfs.pdl",
                              &pres, &diags);
  auto prog = flexrpc::MarshalProgram::Build(
      idl->interfaces[0].ops[0],
      *pres.Find("NFS_VERSION")->FindOp("NFSPROC_READ"));
  uint8_t fh[32] = {};
  flexrpc::ArgVec args(prog.slot_count());
  args[prog.SlotOf("file")].set_ptr(fh);
  args[prog.SlotOf("offset")].scalar = 0;
  args[prog.SlotOf("count")].scalar = 8192;
  args[prog.SlotOf("totalcount")].scalar = 8192;
  for (auto _ : state) {
    flexrpc::XdrWriter w;
    (void)prog.MarshalRequest(args, &w);
    benchmark::DoNotOptimize(w.size());
  }
}

}  // namespace

BENCHMARK(BM_ParseNfsIdl)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AnalyzeAndPresent)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BuildSignature)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BuildMarshalProgram)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GenerateCpp)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MarshalNfsRequest)->Unit(benchmark::kNanosecond);

int main(int argc, char** argv) {
  flexrpc_bench::BenchHarness harness("compiler", &argc, argv);
  harness.RunMicrobenchmarks();

  using flexrpc_bench::PrintHeader;
  using flexrpc_bench::PrintRule;

  PrintHeader("Stub-compiler pipeline: cost per stage (fixed iterations)");

  // Fixed-iteration re-measurement of each stage so the stage mix (and
  // the marshal work-counter breakdown) lands in the JSON artifact.
  auto time_stage = [&](const char* name, int full_iters, int smoke_iters,
                        const std::function<void()>& body) {
    int iters = harness.calls(full_iters, smoke_iters);
    double us = harness.Untraced([&] {
      flexrpc::Stopwatch timer;
      for (int i = 0; i < iters; ++i) {
        body();
      }
      return static_cast<double>(timer.ElapsedNanos()) / iters / 1e3;
    });
    // One traced iteration: the artifact counts a single execution of the
    // stage, independent of the timing iteration count.
    harness.Traced(body);
    std::printf("%-28s %10.2f us/iter\n", name, us);
    harness.Report(name, us, "us/iter");
  };

  flexrpc::DiagnosticSink diags;
  auto idl = flexrpc::ParseSunRpc(flexrpc::NfsIdlText(), "nfs.x", &diags);
  (void)flexrpc::AnalyzeInterfaceFile(idl.get(), &diags);
  flexrpc::PresentationSet pres;
  (void)flexrpc::ApplyPdlText(*idl, flexrpc::Side::kClient,
                              flexrpc::NfsClientPdlText(), "nfs.pdl", &pres,
                              &diags);
  flexrpc::PresentationSet server;
  (void)flexrpc::ApplyPdl(*idl, flexrpc::Side::kServer, nullptr, &server,
                          &diags);

  time_stage("parse_nfs_idl", 500, 5, [&] {
    flexrpc::DiagnosticSink d;
    auto parsed = flexrpc::ParseSunRpc(flexrpc::NfsIdlText(), "nfs.x", &d);
    benchmark::DoNotOptimize(parsed);
  });
  time_stage("analyze_and_present", 200, 2, [&] {
    flexrpc::DiagnosticSink d;
    auto parsed = flexrpc::ParseSunRpc(flexrpc::NfsIdlText(), "nfs.x", &d);
    (void)flexrpc::AnalyzeInterfaceFile(parsed.get(), &d);
    flexrpc::PresentationSet p;
    (void)flexrpc::ApplyPdlText(*parsed, flexrpc::Side::kClient,
                                flexrpc::NfsClientPdlText(), "nfs.pdl", &p,
                                &d);
    benchmark::DoNotOptimize(p);
  });
  time_stage("build_signature", 2000, 20, [&] {
    auto sig = flexrpc::BuildSignature(idl->interfaces[0]);
    benchmark::DoNotOptimize(flexrpc::SignatureHash(sig));
  });
  time_stage("build_marshal_program", 2000, 20, [&] {
    auto prog = flexrpc::MarshalProgram::Build(
        idl->interfaces[0].ops[0],
        *pres.Find("NFS_VERSION")->FindOp("NFSPROC_READ"));
    benchmark::DoNotOptimize(prog.slot_count());
  });
  time_stage("generate_cpp", 200, 2, [&] {
    flexrpc::CppGenOptions options;
    options.header_name = "nfs.flexgen.h";
    auto generated = flexrpc::GenerateCpp(*idl, pres, server, options);
    benchmark::DoNotOptimize(generated->header.size());
  });

  auto prog = flexrpc::MarshalProgram::Build(
      idl->interfaces[0].ops[0],
      *pres.Find("NFS_VERSION")->FindOp("NFSPROC_READ"));
  uint8_t fh[32] = {};
  flexrpc::ArgVec args(prog.slot_count());
  args[prog.SlotOf("file")].set_ptr(fh);
  args[prog.SlotOf("offset")].scalar = 0;
  args[prog.SlotOf("count")].scalar = 8192;
  args[prog.SlotOf("totalcount")].scalar = 8192;
  time_stage("marshal_nfs_read_request", 1000000, 100, [&] {
    flexrpc::XdrWriter w;
    (void)prog.MarshalRequest(args, &w);
    benchmark::DoNotOptimize(w.size());
  });

  // flexspec stages: compiling a superinstruction plan, proving it
  // equivalent, and the interpreter-vs-fused A/B on the same program.
  const flexrpc::OperationDecl& read_op = idl->interfaces[0].ops[0];
  const flexrpc::OpPresentation& read_pres =
      *pres.Find("NFS_VERSION")->FindOp("NFSPROC_READ");
  time_stage("compile_spec_plan", 2000, 20, [&] {
    auto plan = flexrpc::CompileSpecPlan(read_op, read_pres);
    benchmark::DoNotOptimize(plan.AnyStream());
  });
  time_stage("verify_spec_plan", 500, 5, [&] {
    auto plan = flexrpc::CompileSpecPlan(read_op, read_pres);
    flexrpc::DiagnosticSink d;
    int divergences =
        flexrpc::VerifySpecPlan(read_op, read_pres, plan, "nfs.x", &d);
    benchmark::DoNotOptimize(divergences);
  });
  flexrpc::SetMarshalSpecializationEnabled(false);
  time_stage("marshal_nfs_read_interp", 1000000, 100, [&] {
    flexrpc::XdrWriter w;
    (void)prog.MarshalRequest(args, &w);
    benchmark::DoNotOptimize(w.size());
  });
  flexrpc::SetMarshalSpecializationEnabled(true);
  time_stage("marshal_nfs_read_fused", 1000000, 100, [&] {
    flexrpc::XdrWriter w;
    (void)prog.MarshalRequest(args, &w);
    benchmark::DoNotOptimize(w.size());
  });
  PrintRule();
  return harness.Finish();
}
