// Compiler-pipeline benchmark (sanity, not a paper figure): the cost of
// each stage of the stub compiler — parsing, PDL application, signature
// derivation, marshal-program compilation, and C++ emission — plus the
// per-call cost of the compiled marshal programs on the SysLog and NFS
// workloads.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/apps/nfs.h"
#include "src/codegen/cpp_gen.h"
#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/idl/sunrpc_parser.h"
#include "src/marshal/xdr.h"
#include "src/pdl/apply.h"
#include "src/sig/signature.h"

namespace {

void BM_ParseNfsIdl(benchmark::State& state) {
  for (auto _ : state) {
    flexrpc::DiagnosticSink diags;
    auto idl = flexrpc::ParseSunRpc(flexrpc::NfsIdlText(), "nfs.x", &diags);
    benchmark::DoNotOptimize(idl);
  }
}

void BM_AnalyzeAndPresent(benchmark::State& state) {
  for (auto _ : state) {
    flexrpc::DiagnosticSink diags;
    auto idl = flexrpc::ParseSunRpc(flexrpc::NfsIdlText(), "nfs.x", &diags);
    (void)flexrpc::AnalyzeInterfaceFile(idl.get(), &diags);
    flexrpc::PresentationSet pres;
    (void)flexrpc::ApplyPdlText(*idl, flexrpc::Side::kClient,
                                flexrpc::NfsClientPdlText(), "nfs.pdl",
                                &pres, &diags);
    benchmark::DoNotOptimize(pres);
  }
}

void BM_BuildSignature(benchmark::State& state) {
  flexrpc::DiagnosticSink diags;
  auto idl = flexrpc::ParseSunRpc(flexrpc::NfsIdlText(), "nfs.x", &diags);
  (void)flexrpc::AnalyzeInterfaceFile(idl.get(), &diags);
  for (auto _ : state) {
    auto sig = flexrpc::BuildSignature(idl->interfaces[0]);
    benchmark::DoNotOptimize(flexrpc::SignatureHash(sig));
  }
}

void BM_BuildMarshalProgram(benchmark::State& state) {
  flexrpc::DiagnosticSink diags;
  auto idl = flexrpc::ParseSunRpc(flexrpc::NfsIdlText(), "nfs.x", &diags);
  (void)flexrpc::AnalyzeInterfaceFile(idl.get(), &diags);
  flexrpc::PresentationSet pres;
  (void)flexrpc::ApplyPdlText(*idl, flexrpc::Side::kClient,
                              flexrpc::NfsClientPdlText(), "nfs.pdl",
                              &pres, &diags);
  const flexrpc::OperationDecl& op = idl->interfaces[0].ops[0];
  const flexrpc::OpPresentation& op_pres =
      *pres.Find("NFS_VERSION")->FindOp("NFSPROC_READ");
  for (auto _ : state) {
    auto prog = flexrpc::MarshalProgram::Build(op, op_pres);
    benchmark::DoNotOptimize(prog.slot_count());
  }
}

void BM_GenerateCpp(benchmark::State& state) {
  flexrpc::DiagnosticSink diags;
  auto idl = flexrpc::ParseSunRpc(flexrpc::NfsIdlText(), "nfs.x", &diags);
  (void)flexrpc::AnalyzeInterfaceFile(idl.get(), &diags);
  flexrpc::PresentationSet client;
  flexrpc::PresentationSet server;
  (void)flexrpc::ApplyPdlText(*idl, flexrpc::Side::kClient,
                              flexrpc::NfsClientPdlText(), "nfs.pdl",
                              &client, &diags);
  (void)flexrpc::ApplyPdl(*idl, flexrpc::Side::kServer, nullptr, &server,
                          &diags);
  flexrpc::CppGenOptions options;
  options.header_name = "nfs.flexgen.h";
  for (auto _ : state) {
    auto generated = flexrpc::GenerateCpp(*idl, client, server, options);
    benchmark::DoNotOptimize(generated->header.size());
  }
}

void BM_MarshalNfsRequest(benchmark::State& state) {
  flexrpc::DiagnosticSink diags;
  auto idl = flexrpc::ParseSunRpc(flexrpc::NfsIdlText(), "nfs.x", &diags);
  (void)flexrpc::AnalyzeInterfaceFile(idl.get(), &diags);
  flexrpc::PresentationSet pres;
  (void)flexrpc::ApplyPdlText(*idl, flexrpc::Side::kClient,
                              flexrpc::NfsClientPdlText(), "nfs.pdl",
                              &pres, &diags);
  auto prog = flexrpc::MarshalProgram::Build(
      idl->interfaces[0].ops[0],
      *pres.Find("NFS_VERSION")->FindOp("NFSPROC_READ"));
  uint8_t fh[32] = {};
  flexrpc::ArgVec args(prog.slot_count());
  args[prog.SlotOf("file")].set_ptr(fh);
  args[prog.SlotOf("offset")].scalar = 0;
  args[prog.SlotOf("count")].scalar = 8192;
  args[prog.SlotOf("totalcount")].scalar = 8192;
  for (auto _ : state) {
    flexrpc::XdrWriter w;
    (void)prog.MarshalRequest(args, &w);
    benchmark::DoNotOptimize(w.size());
  }
}

}  // namespace

BENCHMARK(BM_ParseNfsIdl)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AnalyzeAndPresent)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BuildSignature)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BuildMarshalProgram)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GenerateCpp)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MarshalNfsRequest)->Unit(benchmark::kNanosecond);

BENCHMARK_MAIN();
