// Ablation: the streamlined IPC path (§4.2) vs the traditional typed
// Mach-message path, for small (64 B) and large (4 KB) messages.
//
// Quantifies the substrate property the paper leans on: "the more
// efficient the underlying IPC transport mechanism is, the more important
// it is for the RPC system to support flexible presentation."

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/ipc/fastpath.h"
#include "src/ipc/oldpath.h"
#include "src/support/timing.h"

namespace {

struct Rig {
  flexrpc::Kernel kernel;
  flexrpc::FastPath fastpath{&kernel};
  flexrpc::OldPath oldpath{&kernel};
  flexrpc::Task* client;
  flexrpc::Task* server;
  flexrpc::Port* port;
  flexrpc::PortName reply_port;

  Rig() {
    client = kernel.CreateTask("client");
    server = kernel.CreateTask("server");
    flexrpc::PortName pn = kernel.CreatePort(server);
    port = *kernel.ResolvePort(server, pn);
    reply_port = kernel.CreatePort(client);
    auto echo = [](flexrpc::ServerCall* call) {
      call->reply->assign(call->request,
                          call->request + call->request_size);
      return flexrpc::Status::Ok();
    };
    fastpath.Serve(port, server, echo);
    oldpath.Serve(port, server, echo);
  }

  double FastNs(size_t size, int calls) {
    std::vector<uint8_t> payload(size, 0x2B);
    flexrpc::Stopwatch timer;
    for (int i = 0; i < calls; ++i) {
      void* reply;
      size_t reply_size;
      (void)fastpath.Call(client, port,
                          flexrpc::ByteSpan(payload.data(), size), &reply,
                          &reply_size);
      client->space().Free(reply);
    }
    return static_cast<double>(timer.ElapsedNanos()) / calls;
  }

  double OldNs(size_t size, int calls) {
    std::vector<uint8_t> payload(size, 0x2B);
    std::vector<flexrpc::TypedItem> items = {
        {1, static_cast<uint32_t>(size)}};
    flexrpc::Stopwatch timer;
    for (int i = 0; i < calls; ++i) {
      void* reply;
      size_t reply_size;
      (void)oldpath.Call(client, port, reply_port,
                         flexrpc::ByteSpan(payload.data(), size), items,
                         &reply, &reply_size);
      client->space().Free(reply);
    }
    return static_cast<double>(timer.ElapsedNanos()) / calls;
  }
};

void BM_FastPath(benchmark::State& state) {
  Rig rig;
  size_t size = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> payload(size, 0x2B);
  for (auto _ : state) {
    void* reply;
    size_t reply_size;
    (void)rig.fastpath.Call(rig.client, rig.port,
                            flexrpc::ByteSpan(payload.data(), size),
                            &reply, &reply_size);
    rig.client->space().Free(reply);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * size * 2));
}

void BM_OldPath(benchmark::State& state) {
  Rig rig;
  size_t size = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> payload(size, 0x2B);
  std::vector<flexrpc::TypedItem> items = {
      {1, static_cast<uint32_t>(size)}};
  for (auto _ : state) {
    void* reply;
    size_t reply_size;
    (void)rig.oldpath.Call(rig.client, rig.port, rig.reply_port,
                           flexrpc::ByteSpan(payload.data(), size), items,
                           &reply, &reply_size);
    rig.client->space().Free(reply);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * size * 2));
}

}  // namespace

BENCHMARK(BM_FastPath)->Arg(64)->Arg(4096)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_OldPath)->Arg(64)->Arg(4096)->Unit(benchmark::kNanosecond);

int main(int argc, char** argv) {
  flexrpc_bench::BenchHarness harness("ablate_fastpath", &argc, argv);
  harness.RunMicrobenchmarks();

  using flexrpc_bench::PercentFaster;
  using flexrpc_bench::PrintHeader;
  using flexrpc_bench::PrintRule;

  PrintHeader(
      "Ablation: streamlined IPC path vs traditional typed-message path");
  const int kCalls = harness.calls(300000, 300);
  for (size_t size : {size_t{64}, size_t{4096}}) {
    Rig rig;
    double fast =
        harness.BestOf(1, true, [&] { return rig.FastNs(size, kCalls); });
    double old_path =
        harness.BestOf(1, true, [&] { return rig.OldNs(size, kCalls); });
    std::printf("%5zu-byte echo: streamlined %8.1f ns   traditional %8.1f "
                "ns   (%.1f%% faster)\n",
                size, fast, old_path, PercentFaster(old_path, fast));
    char label[64];
    std::snprintf(label, sizeof(label), "fastpath_%zuB_ns", size);
    harness.Report(label, fast, "ns/call");
    std::snprintf(label, sizeof(label), "oldpath_%zuB_ns", size);
    harness.Report(label, old_path, "ns/call");
  }
  PrintRule();

  // Acceptance check for flextrace's "zero overhead when disabled" claim:
  // the same fastpath workload with tracing forced off vs on. The
  // BenchHarness session keeps tracing enabled here, so off-state runs
  // toggle it manually and restore afterwards.
  {
    const int kOverheadCalls = harness.calls(300000, 300);
    Rig rig;
    rig.FastNs(64, kOverheadCalls / 10 + 1);  // warm up
    flexrpc::SetTraceEnabled(false);
    double disabled = rig.FastNs(64, kOverheadCalls);
    flexrpc::SetTraceEnabled(true);
    double enabled = rig.FastNs(64, kOverheadCalls);
    double overhead_pct = (enabled - disabled) / disabled * 100.0;
    std::printf("trace off %8.1f ns   trace on %8.1f ns   overhead %+.2f%%\n",
                disabled, enabled, overhead_pct);
    PrintRule();
    harness.Report("trace_disabled_ns", disabled, "ns/call");
    harness.Report("trace_enabled_ns", enabled, "ns/call");
    harness.Report("trace_overhead_pct", overhead_pct, "%");
  }
  return harness.Finish();
}
