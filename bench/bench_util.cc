#include "bench/bench_util.h"

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/marshal/spec.h"
#include "src/support/json.h"
#include "src/support/strings.h"

namespace flexrpc_bench {

BenchHarness::BenchHarness(std::string name, int* argc, char** argv)
    : name_(std::move(name)) {
  // Strip our flags before google-benchmark sees argv — it rejects flags
  // it does not recognize.
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      smoke_ = true;
    } else if (std::strcmp(arg, "--record") == 0) {
      record_ = true;
    } else if (std::strncmp(arg, "--json_dir=", 11) == 0) {
      json_dir_ = arg + 11;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  benchmark::Initialize(argc, argv);
}

BenchHarness::~BenchHarness() {
  benchmark::Shutdown();
}

void BenchHarness::RunMicrobenchmarks() {
  // The adaptive-iteration gbench phase is skipped under --smoke: it is
  // slow and its iteration counts are nondeterministic. It always runs
  // outside the trace window, so it never perturbs the gated counters.
  if (!smoke_) {
    benchmark::RunSpecifiedBenchmarks();
  }
  session_.emplace();
  window_timer_.emplace();
  // The marshal profile covers the same window as the trace counters, so
  // the artifact's "marshal_profile" section ranks exactly the gated work.
  flexrpc::ResetMarshalProfile();
}

double BenchHarness::BestOf(int rep_count,
                            bool smaller_is_better,
                            const std::function<double()>& measure) {
  // Timing reps run untraced: enabled tracing costs dozens of relaxed
  // atomic RMWs per call, which would shift the reproduced figures.
  bool was_tracing = flexrpc::TraceEnabled();
  flexrpc::SetTraceEnabled(false);
  double best = measure();
  for (int rep = 1; rep < rep_count; ++rep) {
    double value = measure();
    if (smaller_is_better ? value < best : value > best) {
      best = value;
    }
  }
  flexrpc::SetTraceEnabled(was_tracing);
  if (was_tracing) {
    // One extra traced repetition so the artifact still counts the work
    // (one rep's worth, which keeps the gated counters deterministic).
    measure();
  }
  return best;
}

void BenchHarness::Report(std::string name, double value, std::string unit) {
  results_.push_back(
      BenchResult{std::move(name), value, std::move(unit)});
}

bool BenchHarness::WriteArtifact(const std::string& filename,
                                 const std::string& contents) const {
  std::string path =
      (json_dir_.empty() ? std::string(".") : json_dir_) + "/" + filename;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(contents.data(), 1, contents.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

int BenchHarness::Finish() {
  if (finished_) {
    return 0;
  }
  finished_ = true;
  double wall_seconds =
      window_timer_.has_value() ? window_timer_->ElapsedSeconds() : 0.0;
  flexrpc::TraceSnapshot delta;
  if (session_.has_value()) {
    delta = session_->Report();
  }

  flexrpc::JsonWriter json;
  json.BeginObject();
  json.Key("schema").String("flexrpc-bench-v1");
  json.Key("bench").String(name_);
  json.Key("smoke").Bool(smoke_);
  json.Key("wall_seconds").Double(wall_seconds);
  // Modeled (virtual-clock) time spent on the simulated wire inside the
  // measurement window; zero for benches that never touch the link model.
  json.Key("virtual_nanos")
      .UInt(delta.counter(flexrpc::TraceCounter::kNetWireVirtualNanos));
  json.Key("results").BeginArray();
  for (const BenchResult& result : results_) {
    json.BeginObject();
    json.Key("name").String(result.name);
    json.Key("value").Double(result.value);
    json.Key("unit").String(result.unit);
    json.EndObject();
  }
  json.EndArray();
  json.Key("trace");
  flexrpc::WriteTraceSnapshot(json, delta);
  // Per-plan hotness for `idlc --specialize --profile=`: one entry per
  // (operation signature × presentation) key the window exercised.
  // Budgets never read this section, so it cannot trip the CI gate.
  json.Key("marshal_profile").BeginArray();
  for (const flexrpc::MarshalProfileEntry& entry :
       flexrpc::SnapshotMarshalProfile()) {
    if (entry.marshal_calls == 0 && entry.unmarshal_calls == 0) {
      continue;
    }
    json.BeginObject();
    json.Key("op").String(entry.op_name);
    json.Key("op_hash").String(
        flexrpc::StrFormat("%016llx",
                           static_cast<unsigned long long>(
                               entry.key.op_hash)));
    json.Key("pres_hash").String(
        flexrpc::StrFormat("%016llx",
                           static_cast<unsigned long long>(
                               entry.key.pres_hash)));
    json.Key("marshal_calls").UInt(entry.marshal_calls);
    json.Key("unmarshal_calls").UInt(entry.unmarshal_calls);
    json.Key("wire_bytes").UInt(entry.wire_bytes);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  std::string path = json_dir_.empty() ? std::string(".") : json_dir_;
  path += "/BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return 1;
  }
  const std::string& text = json.str();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}

}  // namespace flexrpc_bench
