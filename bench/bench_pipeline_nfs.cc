// Sliding-window pipelined NFS read — what call overlap buys in virtual
// time.
//
// The serial lossy transport (bench_fault_nfs) charges every call the full
// request + server + reply round trip before the next call may start. The
// pipelined transport (src/rpc/pipeline.h) keeps up to `window` calls in
// flight over the same datagram channel, so total time collapses toward
// the busiest single resource. This bench sweeps the window at small
// (512 B) chunks — where the read is latency/server-bound and the window
// pays off — and contrasts with full 8 KB chunks, where the reply wire is
// already saturated and the window can only help a little. A lossy row
// shows the overlap surviving drops: RTO retransmits and dup-cache hits
// happen per call without stalling the rest of the window.
//
// All figures are virtual-clock, so every number and every trace counter
// is deterministic and the CI budget gate pins them exactly.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/bench_util.h"
#include "src/apps/nfs.h"
#include "src/net/datagram.h"
#include "src/net/fault.h"
#include "src/rpc/pipeline.h"
#include "src/support/event_queue.h"
#include "src/support/recorder.h"

namespace {

using flexrpc::DatagramChannel;
using flexrpc::EventQueue;
using flexrpc::FaultConfig;
using flexrpc::FaultPlan;
using flexrpc::LinkModel;
using flexrpc::NfsClient;
using flexrpc::NfsFileServer;
using flexrpc::PipelinedTransport;
using flexrpc::PipelinePolicy;
using flexrpc::RemoteServerModel;
using flexrpc::VirtualClock;

constexpr size_t kFileSize = 1u << 20;  // full-fidelity run
constexpr size_t kSmokeSize = 64u << 10;

struct RunResult {
  NfsClient::ReadStats stats;
  PipelinedTransport::Stats transport_stats;
  uint32_t final_window = 0;
  double virtual_seconds = 0;
};

RunResult RunPipelined(uint32_t window, size_t chunk_bytes, size_t file_size,
                       const FaultConfig& to_server,
                       const FaultConfig& to_client,
                       uint64_t rto_nanos = 20'000'000,
                       bool adaptive = false) {
  NfsFileServer server(file_size, /*seed=*/1995);
  NfsClient client(&server, LinkModel(), RemoteServerModel());
  VirtualClock clock;
  DatagramChannel channel(LinkModel(), FaultPlan{to_server},
                          FaultPlan{to_client}, &clock);
  EventQueue events(&clock);
  PipelinePolicy policy;
  policy.window = window;
  // ReadFilePipelined submits every chunk up front and the deadline is
  // armed at submission (queued time counts), so a serial lossy run over
  // thousands of chunks needs a deadline covering the whole backlog.
  policy.retry.deadline_nanos = 60'000'000'000;
  // The RTO must sit above the window's worst-case reply queueing delay
  // or healthy-but-queued replies trigger spurious retransmits (the
  // fixed-RTO congestion collapse — callers pass a larger RTO for large
  // chunks, standing in for the adaptive RTT estimate real NFS used).
  policy.retry.initial_rto_nanos = rto_nanos;
  if (adaptive) {
    // The self-tuning transport: Jacobson/Karels RTO + AIMD window. No
    // per-scenario tuning — only the pre-sample RTO seed and a 5 ms RTO
    // floor (an NFS-style guard against under-timeout on fast paths).
    policy.retry.adaptive.enabled = true;
    policy.retry.adaptive.rtt.initial_rto_nanos = rto_nanos;
    policy.retry.adaptive.rtt.min_rto_nanos = 5'000'000;
  }
  PipelinedTransport transport(&channel, NfsFileServer::MakeHandler(&server),
                               RemoteServerModel(), policy, &events);
  auto stats = client.ReadFilePipelined(
      NfsClient::StubKind::kGeneratedUserBuffer, &transport, chunk_bytes);
  if (!stats.ok()) {
    std::fprintf(stderr, "pipelined NFS read failed: %s\n",
                 stats.status().ToString().c_str());
    std::abort();
  }
  RunResult result;
  result.stats = *stats;
  result.transport_stats = transport.stats();
  result.final_window = transport.current_window();
  result.virtual_seconds = static_cast<double>(clock.now_nanos()) * 1e-9;
  return result;
}

FaultConfig LossyMix() {
  FaultConfig config;
  config.drop_prob = 0.02;
  config.dup_prob = 0.02;
  config.reorder_prob = 0.02;
  config.seed = 205;
  return config;
}

void BM_PipelinedNfsRead(benchmark::State& state) {
  const uint32_t window = static_cast<uint32_t>(state.range(0));
  uint64_t bytes = 0;
  double virtual_seconds = 0;
  for (auto _ : state) {
    auto result = RunPipelined(window, 512, kSmokeSize, FaultConfig{},
                               FaultConfig{});
    bytes += result.stats.bytes_read;
    virtual_seconds += result.virtual_seconds;
  }
  state.counters["virtual_s_per_MB"] = benchmark::Counter(
      virtual_seconds / (static_cast<double>(bytes) / (1 << 20)));
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}

}  // namespace

BENCHMARK(BM_PipelinedNfsRead)->Arg(1)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

int main(int argc, char** argv) {
  flexrpc_bench::BenchHarness harness("pipeline_nfs", &argc, argv);
  harness.RunMicrobenchmarks();

  using flexrpc_bench::Bar;
  using flexrpc_bench::PrintHeader;
  using flexrpc_bench::PrintRule;

  PrintHeader(
      "Pipelined NFS read: window sweep at 512 B chunks (virtual time)");

  const size_t kRunSize = harness.bytes(kFileSize, kSmokeSize);
  const uint32_t kWindows[] = {1, 2, 4, 8, 16};

  struct Row {
    uint32_t window;
    RunResult result;
  };
  std::vector<Row> sweep;
  for (uint32_t window : kWindows) {
    Row row{window, harness.Untraced([&] {
              return RunPipelined(window, 512, kRunSize, FaultConfig{},
                                  FaultConfig{});
            })};
    sweep.push_back(row);
  }
  // One traced repetition (window=8, clean + lossy, plus one adaptive
  // lossy run) pins the rpc.pipeline.* and rpc.rtt.*/rpc.cwnd.* counters
  // for the budget gate. The lossy adaptive run exercises Karn skips
  // (replies to retransmitted requests) and both AIMD directions.
  harness.Traced([&] {
    (void)RunPipelined(8, 512, kRunSize, FaultConfig{}, FaultConfig{});
    (void)RunPipelined(8, 512, kRunSize, LossyMix(), LossyMix());
    (void)RunPipelined(8, 512, kRunSize, LossyMix(), LossyMix(),
                       20'000'000, /*adaptive=*/true);
  });

  double serial = sweep[0].result.virtual_seconds;
  std::printf("%-10s %10s %8s %10s\n", "window", "virtual(s)", "speedup",
              "goodput");
  for (const Row& row : sweep) {
    double mbit = static_cast<double>(row.result.stats.bytes_read) * 8 /
                  row.result.virtual_seconds / 1e6;
    std::printf("window=%-3u %10.3f %7.2fx %7.2f Mb  %s\n", row.window,
                row.result.virtual_seconds,
                serial / row.result.virtual_seconds, mbit,
                Bar(row.result.virtual_seconds, serial, 24).c_str());
  }
  PrintRule();

  // Contrast: full 8 KB chunks saturate the reply wire, so overlapping
  // calls buys little — the window pays where latency dominates.
  // 100 ms RTO: 8 KB replies occupy the wire ~6.6 ms each, so eight
  // queued replies exceed the default 20 ms RTO and would retransmit
  // spuriously.
  RunResult big_serial = harness.Untraced(
      [&] { return RunPipelined(1, 8192, kRunSize, FaultConfig{},
                                FaultConfig{}, 100'000'000); });
  RunResult big_windowed = harness.Untraced(
      [&] { return RunPipelined(8, 8192, kRunSize, FaultConfig{},
                                FaultConfig{}, 100'000'000); });
  std::printf("8 KB chunks: window=1 %.3fs, window=8 %.3fs (%.2fx) — "
              "bandwidth-bound\n",
              big_serial.virtual_seconds, big_windowed.virtual_seconds,
              big_serial.virtual_seconds / big_windowed.virtual_seconds);

  // The congestion-collapse scenario, adaptive vs fixed: 8 KB chunks at
  // the DEFAULT 20 ms RTO. Once the fixed window queues more reply bytes
  // than the RTO covers (~3 replies at 6.6 ms wire time each),
  // healthy-but-queued replies trigger spurious retransmits which add
  // more queueing — throughput collapses as the window grows. The
  // adaptive transport gets the same default seed RTO and no tuning: the
  // estimator lifts the RTO above the queueing delay while AIMD finds
  // the widest window the pipe sustains.
  PrintRule();
  PrintHeader(
      "Congestion collapse, 8 KB chunks at the default 20 ms RTO: "
      "fixed windows vs adaptive");
  std::printf("%-12s %10s %10s %8s %8s\n", "config", "virtual(s)",
              "goodput", "rexmit", "window");
  std::vector<Row> collapse;
  double best_fixed_mbit = 0;
  for (uint32_t window : kWindows) {
    Row row{window, harness.Untraced([&] {
              return RunPipelined(window, 8192, kRunSize, FaultConfig{},
                                  FaultConfig{});
            })};
    collapse.push_back(row);
    double mbit = static_cast<double>(row.result.stats.bytes_read) * 8 /
                  row.result.virtual_seconds / 1e6;
    best_fixed_mbit = std::max(best_fixed_mbit, mbit);
    std::printf("fixed w=%-4u %10.3f %7.2f Mb %8llu %8u\n", row.window,
                row.result.virtual_seconds, mbit,
                static_cast<unsigned long long>(
                    row.result.transport_stats.retransmits),
                row.window);
  }
  RunResult adaptive_collapse = harness.Untraced([&] {
    return RunPipelined(16, 8192, kRunSize, FaultConfig{}, FaultConfig{},
                        20'000'000, /*adaptive=*/true);
  });
  double adaptive_mbit =
      static_cast<double>(adaptive_collapse.stats.bytes_read) * 8 /
      adaptive_collapse.virtual_seconds / 1e6;
  std::printf("adaptive     %10.3f %7.2f Mb %8llu %8u  "
              "(%llu rtt samples, cwnd +%llu/-%llu)\n",
              adaptive_collapse.virtual_seconds, adaptive_mbit,
              static_cast<unsigned long long>(
                  adaptive_collapse.transport_stats.retransmits),
              adaptive_collapse.final_window,
              static_cast<unsigned long long>(
                  adaptive_collapse.transport_stats.rtt_samples),
              static_cast<unsigned long long>(
                  adaptive_collapse.transport_stats.cwnd_increases),
              static_cast<unsigned long long>(
                  adaptive_collapse.transport_stats.cwnd_decreases));
  std::printf("adaptive vs best fixed: %.2fx\n",
              adaptive_mbit / best_fixed_mbit);

  // Lossy overlap: the window keeps healthy calls moving while a dropped
  // one waits out its RTO.
  RunResult lossy_serial = harness.Untraced(
      [&] { return RunPipelined(1, 512, kRunSize, LossyMix(), LossyMix()); });
  RunResult lossy_windowed = harness.Untraced(
      [&] { return RunPipelined(8, 512, kRunSize, LossyMix(), LossyMix()); });
  std::printf("2%% drop+dup+reorder: window=1 %.3fs, window=8 %.3fs "
              "(%.2fx), rexmit %llu\n",
              lossy_serial.virtual_seconds, lossy_windowed.virtual_seconds,
              lossy_serial.virtual_seconds / lossy_windowed.virtual_seconds,
              static_cast<unsigned long long>(
                  lossy_windowed.stats.retransmits));

  if (harness.record()) {
    // One extra seeded lossy rep under a flight-recorder session. Runs
    // untraced so the gated counter budgets see nothing; the recording
    // itself is deterministic (same seeds, virtual stamps only), so two
    // --record runs produce byte-identical REC artifacts.
    harness.Untraced([&] {
      flexrpc::RecorderSession rec_session;
      (void)RunPipelined(8, 512, kRunSize, LossyMix(), LossyMix());
      flexrpc::Recording recording = rec_session.Stop();
      harness.WriteArtifact("REC_pipeline_nfs.json",
                            flexrpc::RecordingToJson(recording));
      harness.WriteArtifact("TRACE_pipeline_nfs.json",
                            flexrpc::ExportChromeTrace(recording));
      return 0;
    });
    // And the adaptive collapse scenario, so CI archives the window
    // evolution (kRttSample / kCwndChange events) for every run.
    harness.Untraced([&] {
      flexrpc::RecorderSession rec_session;
      (void)RunPipelined(16, 8192, kRunSize, FaultConfig{}, FaultConfig{},
                         20'000'000, /*adaptive=*/true);
      flexrpc::Recording recording = rec_session.Stop();
      harness.WriteArtifact("REC_pipeline_nfs_adaptive.json",
                            flexrpc::RecordingToJson(recording));
      harness.WriteArtifact("TRACE_pipeline_nfs_adaptive.json",
                            flexrpc::ExportChromeTrace(recording));
      return 0;
    });
  }

  for (const Row& row : sweep) {
    std::string key = "w" + std::to_string(row.window);
    harness.Report(key + "_virtual_seconds", row.result.virtual_seconds,
                   "s");
    harness.Report(key + "_speedup",
                   serial / row.result.virtual_seconds, "x");
  }
  harness.Report("big_chunk_speedup",
                 big_serial.virtual_seconds / big_windowed.virtual_seconds,
                 "x");
  harness.Report("collapse_best_fixed_mbit", best_fixed_mbit, "Mb/s");
  harness.Report("collapse_adaptive_mbit", adaptive_mbit, "Mb/s");
  harness.Report("collapse_adaptive_vs_best_fixed",
                 adaptive_mbit / best_fixed_mbit, "x");
  harness.Report("lossy_speedup",
                 lossy_serial.virtual_seconds /
                     lossy_windowed.virtual_seconds,
                 "x");
  return harness.Finish();
}
