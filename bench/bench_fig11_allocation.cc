// Figure 11 — "Performance Effects of Allocation Semantics".
//
// A same-domain RPC with a single 1 KB `out` parameter, across four
// requirement groups (which side, if either, insists on providing the
// buffer) and three RPC systems:
//   * fixed "server allocates, client consumes" (CORBA/COM move);
//   * fixed "client allocates, client consumes" (MIG-style);
//   * flexible presentation ([alloc(user)] / [alloc(stub)] per side).
// Where a fixed system's semantics don't match an endpoint's needs, the
// benchmark performs the hand-written glue (copies, extra allocations) the
// programmer would have to write — exactly what the lined bar segments in
// the paper's figure represent.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/rpc/samedomain.h"
#include "src/support/timing.h"

namespace {

constexpr size_t kBufSize = 1024;

enum class System { kServerAlloc, kClientAlloc, kFlexible };

struct Scenario {
  bool server_has_buffer;  // data pre-exists in a server-owned buffer
  bool client_has_buffer;  // the client needs it in a specific buffer
  const char* label;
};

const Scenario kScenarios[] = {
    {false, false, "neither side constrained        "},
    {true, false, "server provides its buffer      "},
    {false, true, "client provides its buffer      "},
    {true, true, "both insist on their own buffer "},
};

class Rig {
 public:
  Rig(System system, const Scenario& scenario)
      : system_(system), scenario_(scenario) {
    flexrpc::DiagnosticSink diags;
    idl_ = flexrpc::ParseCorbaIdl(
        "interface FileIO { sequence<octet> read(in unsigned long count); "
        "};",
        "t.idl", &diags);
    if (idl_ == nullptr ||
        !flexrpc::AnalyzeInterfaceFile(idl_.get(), &diags)) {
      std::abort();
    }
    std::string client_pdl;
    std::string server_pdl;
    switch (system) {
      case System::kServerAlloc:
        break;  // the defaults ARE the CORBA semantics
      case System::kClientAlloc:
        client_pdl = "FileIO_read()[alloc(user)];";
        server_pdl = "FileIO_read()[alloc(stub)];";
        break;
      case System::kFlexible:
        if (scenario.client_has_buffer) {
          client_pdl = "FileIO_read()[alloc(user)];";
        }
        // An unconstrained server lets the system provide the buffer;
        // a server with pre-existing data insists on donating its own
        // ([alloc(user)]).
        server_pdl = scenario.server_has_buffer
                         ? "FileIO_read()[alloc(user)];"
                         : "FileIO_read()[alloc(stub)];";
        break;
    }
    Apply(flexrpc::Side::kClient, client_pdl, &client_);
    Apply(flexrpc::Side::kServer, server_pdl, &server_);

    source_ = static_cast<uint8_t*>(arena_.AllocateBlock(kBufSize));
    std::memset(source_, 0xEE, kBufSize);
    scratch_ = static_cast<uint8_t*>(arena_.AllocateBlock(kBufSize));
    target_ = static_cast<uint8_t*>(arena_.AllocateBlock(kBufSize));

    auto bound = flexrpc::SameDomainConnection::Bind(
        idl_->interfaces[0].ops[0], *client_.Find("FileIO")->FindOp("read"),
        *server_.Find("FileIO")->FindOp("read"), &arena_, MakeWork());
    if (!bound.ok()) {
      std::fprintf(stderr, "%s\n", bound.status().ToString().c_str());
      std::abort();
    }
    conn_ = std::make_unique<flexrpc::SameDomainConnection>(
        std::move(*bound));
  }

  // One RPC including whatever endpoint glue the system forces.
  void Call() {
    flexrpc::ArgVec args(2);
    args[0].scalar = kBufSize;
    bool client_user_form =
        system_ == System::kClientAlloc ||
        (system_ == System::kFlexible && scenario_.client_has_buffer);
    uint8_t* mig_scratch = nullptr;
    if (client_user_form) {
      // MIG form (or flexible with [alloc(user)]): pass a buffer to fill.
      // A client with no buffer preference must nevertheless conjure one
      // for the MIG system — that allocation is glue.
      uint8_t* buffer = target_;
      if (!scenario_.client_has_buffer) {
        mig_scratch = static_cast<uint8_t*>(arena_.AllocateBlock(kBufSize));
        buffer = mig_scratch;
      }
      args[1].set_ptr(buffer);
      args[1].capacity = kBufSize;
    }
    if (!conn_->Call(&args).ok()) {
      std::abort();
    }
    // Client-side consumption + glue.
    if (client_user_form) {
      benchmark::DoNotOptimize(
          static_cast<uint8_t*>(args[1].ptr())[kBufSize / 2]);
      if (mig_scratch != nullptr) {
        arena_.FreeBlock(mig_scratch);
      }
      return;
    }
    auto* returned = static_cast<uint8_t*>(args[1].ptr());
    if (scenario_.client_has_buffer) {
      // CORBA system, but the client needed the data in `target_`: glue.
      std::memcpy(target_, returned, kBufSize);
      ++glue_copies_;
      benchmark::DoNotOptimize(target_[kBufSize / 2]);
    } else {
      benchmark::DoNotOptimize(returned[kBufSize / 2]);
    }
    // Move semantics: the donated buffer is now the client's to free.
    arena_.FreeBlock(returned);
  }

  double NsPerCall(int calls) {
    for (int i = 0; i < 1000; ++i) {
      Call();
    }
    flexrpc::Stopwatch timer;
    for (int i = 0; i < calls; ++i) {
      Call();
    }
    return static_cast<double>(timer.ElapsedNanos()) / calls;
  }

  uint64_t glue_copies() const { return glue_copies_; }
  uint64_t stub_copies() const { return conn_->copies(); }

 private:
  void Apply(flexrpc::Side side, const std::string& pdl,
             flexrpc::PresentationSet* out) {
    flexrpc::DiagnosticSink d;
    bool ok = pdl.empty()
                  ? flexrpc::ApplyPdl(*idl_, side, nullptr, out, &d)
                  : flexrpc::ApplyPdlText(*idl_, side, pdl, "p.pdl", out,
                                          &d);
    if (!ok) {
      std::fprintf(stderr, "%s", d.ToString().c_str());
      std::abort();
    }
  }

  flexrpc::WorkFunction MakeWork() {
    System system = system_;
    Scenario scenario = scenario_;
    flexrpc::Arena* arena = &arena_;
    uint8_t* source = source_;
    uint64_t* glue = &glue_copies_;
    return [system, scenario, arena, source, glue](
               flexrpc::ArgVec* args, flexrpc::Arena*) {
      flexrpc::ArgValue& result = (*args)[args->size() - 1];
      bool stub_gave_buffer = result.ptr() != nullptr;
      if (stub_gave_buffer) {
        // MIG form / flexible fill-client-buffer: write into it.
        auto* dest = static_cast<uint8_t*>(result.ptr());
        if (scenario.server_has_buffer) {
          // The data already exists elsewhere: glue copy.
          std::memcpy(dest, source, kBufSize);
          ++*glue;
        } else {
          std::memset(dest, 0x77, kBufSize);  // produce fresh data
        }
        result.length = kBufSize;
        return flexrpc::Status::Ok();
      }
      // Donation form: the server supplies a buffer that the client will
      // own. When the data pre-exists (server_has_buffer) the buffer is
      // already filled before the call, so no production cost is charged;
      // the (recycled) allocation stands in for that pre-existing buffer.
      (void)system;
      (void)source;
      (void)glue;
      auto* fresh = static_cast<uint8_t*>(arena->AllocateBlock(kBufSize));
      if (!scenario.server_has_buffer) {
        std::memset(fresh, 0x77, kBufSize);  // produce fresh data
      }
      result.set_ptr(fresh);
      result.length = kBufSize;
      return flexrpc::Status::Ok();
    };
  }

  System system_;
  Scenario scenario_;
  std::unique_ptr<flexrpc::InterfaceFile> idl_;
  flexrpc::PresentationSet client_;
  flexrpc::PresentationSet server_;
  flexrpc::Arena arena_{"domain"};
  std::unique_ptr<flexrpc::SameDomainConnection> conn_;
  uint8_t* source_ = nullptr;   // the server's pre-existing data
  uint8_t* scratch_ = nullptr;  // a client buffer for MIG's sake
  uint8_t* target_ = nullptr;   // where the client really wants the data
  uint64_t glue_copies_ = 0;
};

void BM_SameDomainOut(benchmark::State& state) {
  Rig rig(static_cast<System>(state.range(0)),
          kScenarios[state.range(1)]);
  for (auto _ : state) {
    rig.Call();
  }
  state.counters["glue_copies"] =
      benchmark::Counter(static_cast<double>(rig.glue_copies()));
  state.counters["stub_copies"] =
      benchmark::Counter(static_cast<double>(rig.stub_copies()));
}

}  // namespace

BENCHMARK(BM_SameDomainOut)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2, 3}})
    ->Unit(benchmark::kNanosecond);

int main(int argc, char** argv) {
  flexrpc_bench::BenchHarness harness("fig11_allocation", &argc, argv);
  harness.RunMicrobenchmarks();

  using flexrpc_bench::PrintHeader;
  using flexrpc_bench::PrintRule;

  PrintHeader(
      "Figure 11: same-domain RPC, 1KB out parameter — allocation "
      "semantics");
  const int kCalls = harness.calls(200000, 200);
  const int kReps = harness.reps(3);
  const char* kSystemKeys[3] = {"server_alloc", "client_alloc", "flexible"};
  std::printf("%-34s %13s %13s %13s\n", "requirements (ns/call)",
              "server-alloc", "client-alloc", "flexible");
  double table[4][3];
  for (int s = 0; s < 4; ++s) {
    for (int sys = 0; sys < 3; ++sys) {
      Rig rig(static_cast<System>(sys), kScenarios[s]);
      double best = harness.BestOf(kReps, /*smaller_is_better=*/true,
                                   [&] { return rig.NsPerCall(kCalls); });
      table[s][sys] = best;
      harness.Report(std::string("scenario") + std::to_string(s) + "_" +
                         kSystemKeys[sys] + "_ns",
                     best, "ns/call");
    }
  }
  for (int s = 0; s < 4; ++s) {
    std::printf("%-34s %13.1f %13.1f %13.1f\n", kScenarios[s].label,
                table[s][0], table[s][1], table[s][2]);
  }
  PrintRule();
  std::printf(
      "expected shape (paper): in the two matched groups (middle rows) "
      "flexible ties\nthe fixed system whose semantics happen to match and "
      "beats the other; in the\nmismatch groups (first and last rows) "
      "flexible ties the best achievable —\n'someone must do the "
      "copying' — but without hand-written glue.\n");
  return harness.Finish();
}
