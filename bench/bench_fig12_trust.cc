// Figure 12 — "Performance effect of varying trust parameters".
//
// Null RPC through the bind-time specialized (combination signature)
// transport, for every combination of client trust × server trust in
// {none, leaky, leaky+unprotected}. Relaxed trust removes register
// save/clear/restore blocks from the threaded code.
//
// Paper results: ~30% improvement from the slowest (no trust) to the
// fastest (full mutual trust) corner; the two server columns [leaky] and
// [leaky, unprotected] are identical because trusting a client's
// *correctness* requires no additional kernel work.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/ipc/threaded.h"
#include "src/support/timing.h"

namespace {

using flexrpc::TrustLevel;

const TrustLevel kLevels[] = {TrustLevel::kNone, TrustLevel::kLeaky,
                              TrustLevel::kFull};
const char* kLevelNames[] = {"none", "leaky", "leaky+unprot"};

struct NullRig {
  flexrpc::Kernel kernel;
  std::unique_ptr<flexrpc::InterfaceFile> idl;
  flexrpc::InterfaceSignature sig;
  std::unique_ptr<flexrpc::SpecializedTransport> transport;
  std::unique_ptr<flexrpc::BoundConnection> conn;

  NullRig(TrustLevel client_trust, TrustLevel server_trust,
          bool nonunique = false) {
    flexrpc::DiagnosticSink diags;
    idl = flexrpc::ParseCorbaIdl("interface Null { void ping(); };",
                                 "null.idl", &diags);
    if (idl == nullptr ||
        !flexrpc::AnalyzeInterfaceFile(idl.get(), &diags)) {
      std::abort();
    }
    sig = flexrpc::BuildSignature(idl->interfaces[0]);
    transport = std::make_unique<flexrpc::SpecializedTransport>(&kernel);
    flexrpc::Task* client = kernel.CreateTask("client");
    flexrpc::Task* server = kernel.CreateTask("server");
    flexrpc::PortName pn = kernel.CreatePort(server);
    flexrpc::Port* port = *kernel.ResolvePort(server, pn);
    (void)transport->RegisterServer(port, server, sig, server_trust,
                                    [] {});
    auto bound =
        transport->BindClient(client, port, sig, client_trust, nonunique);
    if (!bound.ok()) {
      std::abort();
    }
    conn = std::move(*bound);
  }

  double NsPerCall(int calls) {
    for (int i = 0; i < 5000; ++i) {
      (void)conn->NullCall();
    }
    flexrpc::Stopwatch timer;
    for (int i = 0; i < calls; ++i) {
      (void)conn->NullCall();
    }
    return static_cast<double>(timer.ElapsedNanos()) / calls;
  }
};

void BM_NullRpcTrust(benchmark::State& state) {
  NullRig rig(kLevels[state.range(0)], kLevels[state.range(1)]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.conn->NullCall());
  }
}

}  // namespace

BENCHMARK(BM_NullRpcTrust)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2}})
    ->Unit(benchmark::kNanosecond);

int main(int argc, char** argv) {
  flexrpc_bench::BenchHarness harness("fig12_trust", &argc, argv);
  harness.RunMicrobenchmarks();

  using flexrpc_bench::PercentFaster;
  using flexrpc_bench::PrintHeader;
  using flexrpc_bench::PrintRule;

  PrintHeader(
      "Figure 12: null RPC latency under all trust combinations "
      "(ns/call)");
  const int kCalls = harness.calls(400000, 400);
  const int kReps = harness.reps(5);
  double table[3][3];
  for (int c = 0; c < 3; ++c) {
    for (int s = 0; s < 3; ++s) {
      double best =
          harness.BestOf(kReps, /*smaller_is_better=*/true, [&] {
            NullRig rig(kLevels[c], kLevels[s]);
            return rig.NsPerCall(kCalls);
          });
      table[c][s] = best;
      harness.Report(std::string(kLevelNames[c]) + "_" + kLevelNames[s] +
                         "_ns",
                     best, "ns/call");
    }
  }
  std::printf("%-16s", "client\\server");
  for (const char* name : kLevelNames) {
    std::printf("%14s", name);
  }
  std::printf("\n");
  for (int c = 0; c < 3; ++c) {
    std::printf("%-16s", kLevelNames[c]);
    for (int s = 0; s < 3; ++s) {
      std::printf("%14.1f", table[c][s]);
    }
    std::printf("\n");
  }
  PrintRule();
  std::printf("slowest (none/none) -> fastest (full/full): %.1f%% "
              "improvement   (paper: ~30%%)\n",
              PercentFaster(table[0][0], table[2][2]));
  std::printf("server [leaky] vs [leaky, unprotected] columns: %.1f%% "
              "apart   (paper: identical)\n",
              (table[0][2] - table[0][1]) / table[0][1] * 100.0);
  harness.Report("corner_improvement_pct",
                 PercentFaster(table[0][0], table[2][2]), "%");
  return harness.Finish();
}
