// Lossy-link NFS read — the Figure-2 experiment over a faulty wire.
//
// The paper's Figure 2 measures presentation cost over a perfect 10 Mbit/s
// Ethernet. This bench reruns the same 8 KB-chunk NFS read through the
// fault-injection substrate (src/net/fault.h, src/net/datagram.h) and the
// at-most-once RetryingTransport, under fixed-seed fault scenarios:
// packet drops force retransmissions, dropped replies exercise the server
// reply cache, duplicates and reorders exercise stale-reply discard, and
// corruption exercises the frame checksum. Reported times are *virtual*
// (wire + server + backoff on the VirtualClock), so every figure and
// every trace counter is deterministic — two runs of the same seed
// produce byte-identical artifacts, which is what lets the CI budget
// gate pin the injected-fault counts exactly.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/apps/nfs.h"
#include "src/net/datagram.h"
#include "src/net/fault.h"
#include "src/rpc/retry.h"
#include "src/support/recorder.h"

namespace {

using flexrpc::DatagramChannel;
using flexrpc::FaultConfig;
using flexrpc::FaultPlan;
using flexrpc::LinkModel;
using flexrpc::NfsClient;
using flexrpc::NfsFileServer;
using flexrpc::RemoteServerModel;
using flexrpc::RetryingTransport;
using flexrpc::RetryPolicy;
using flexrpc::VirtualClock;

constexpr size_t kFileSize = 2u << 20;  // 256 chunks at full fidelity

struct Scenario {
  const char* key;    // artifact key prefix
  const char* label;  // table row
  FaultConfig config;
};

FaultConfig MakeConfig(double drop, double dup, double reorder,
                       double corrupt, double delay, uint64_t seed) {
  FaultConfig config;
  config.drop_prob = drop;
  config.dup_prob = dup;
  config.reorder_prob = reorder;
  config.corrupt_prob = corrupt;
  config.extra_delay_prob = delay;
  config.seed = seed;
  return config;
}

const Scenario kScenarios[] = {
    {"clean", "clean wire                ",
     MakeConfig(0, 0, 0, 0, 0, 101)},
    {"drop1", "1% drop                   ",
     MakeConfig(0.01, 0, 0, 0, 0, 102)},
    {"mixed", "5% drop + dup/reorder/dly ",
     MakeConfig(0.05, 0.02, 0.02, 0, 0.05, 103)},
    {"corrupt2", "2% corruption             ",
     MakeConfig(0, 0, 0, 0.02, 0, 104)},
};

struct ScenarioResult {
  NfsClient::ReadStats stats;
  double virtual_seconds = 0;
};

ScenarioResult RunScenario(const FaultConfig& base, size_t file_size) {
  NfsFileServer server(file_size, /*seed=*/1995);
  NfsClient client(&server, LinkModel(), RemoteServerModel());
  VirtualClock clock;
  FaultConfig a2b = base;
  a2b.seed = base.seed * 2 + 1;
  FaultConfig b2a = base;
  b2a.seed = base.seed * 2 + 2;
  DatagramChannel channel(LinkModel(), FaultPlan{a2b}, FaultPlan{b2a},
                          &clock);
  RetryingTransport transport(&channel, NfsFileServer::MakeHandler(&server),
                              RemoteServerModel(), RetryPolicy{});
  auto stats =
      client.ReadFileLossy(NfsClient::StubKind::kGeneratedUserBuffer,
                           &transport);
  if (!stats.ok()) {
    std::fprintf(stderr, "lossy NFS read failed: %s\n",
                 stats.status().ToString().c_str());
    std::abort();
  }
  ScenarioResult result;
  result.stats = *stats;
  result.virtual_seconds = static_cast<double>(clock.now_nanos()) * 1e-9;
  return result;
}

void BM_LossyNfsRead(benchmark::State& state) {
  const Scenario& scenario =
      kScenarios[static_cast<size_t>(state.range(0))];
  uint64_t bytes = 0;
  double virtual_seconds = 0;
  for (auto _ : state) {
    auto result = RunScenario(scenario.config, 128u << 10);
    bytes += result.stats.bytes_read;
    virtual_seconds += result.virtual_seconds;
  }
  state.counters["virtual_s_per_MB"] = benchmark::Counter(
      virtual_seconds / (static_cast<double>(bytes) / (1 << 20)));
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}

}  // namespace

BENCHMARK(BM_LossyNfsRead)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Unit(
    benchmark::kMillisecond);

int main(int argc, char** argv) {
  flexrpc_bench::BenchHarness harness("fault_nfs", &argc, argv);
  harness.RunMicrobenchmarks();

  using flexrpc_bench::Bar;
  using flexrpc_bench::PercentMore;
  using flexrpc_bench::PrintHeader;
  using flexrpc_bench::PrintRule;

  PrintHeader(
      "Lossy-link NFS read: Figure-2 workload over injected faults "
      "(virtual time)");

  const size_t kRunSize = harness.bytes(kFileSize, 128u << 10);

  // Everything here runs on the virtual clock, so the figures are exact;
  // the single traced repetition both fills the table and produces the
  // deterministic counters the budget gate pins.
  struct Row {
    const Scenario* scenario;
    ScenarioResult result;
  };
  std::vector<Row> rows;
  for (const Scenario& scenario : kScenarios) {
    Row row{&scenario, harness.Untraced([&] {
              return RunScenario(scenario.config, kRunSize);
            })};
    harness.Traced([&] { (void)RunScenario(scenario.config, kRunSize); });
    rows.push_back(row);
  }

  double max_virtual = 0;
  for (const Row& row : rows) {
    max_virtual = std::max(max_virtual, row.result.virtual_seconds);
  }
  std::printf("%-26s %10s %8s %8s %10s\n", "", "virtual(s)", "rexmit",
              "duphit", "goodput");
  for (const Row& row : rows) {
    double mbit = static_cast<double>(row.result.stats.bytes_read) * 8 /
                  row.result.virtual_seconds / 1e6;
    std::printf("%-26s %10.3f %8llu %8llu %7.2f Mb  %s\n",
                row.scenario->label, row.result.virtual_seconds,
                static_cast<unsigned long long>(row.result.stats.retransmits),
                static_cast<unsigned long long>(
                    row.result.stats.dup_cache_hits),
                mbit, Bar(row.result.virtual_seconds, max_virtual, 24).c_str());
  }
  PrintRule();
  double clean = rows[0].result.virtual_seconds;
  std::printf(
      "slowdown vs clean wire: drop1 %.1f%%, mixed %.1f%%, corrupt2 "
      "%.1f%%\n",
      PercentMore(clean, rows[1].result.virtual_seconds),
      PercentMore(clean, rows[2].result.virtual_seconds),
      PercentMore(clean, rows[3].result.virtual_seconds));

  if (harness.record()) {
    // One extra rep of the mixed scenario under a flight-recorder session
    // (untraced: the gated counters must not see it). Deterministic —
    // same seeds, virtual stamps only.
    harness.Untraced([&] {
      flexrpc::RecorderSession rec_session;
      (void)RunScenario(kScenarios[2].config, kRunSize);
      flexrpc::Recording recording = rec_session.Stop();
      harness.WriteArtifact("REC_fault_nfs.json",
                            flexrpc::RecordingToJson(recording));
      harness.WriteArtifact("TRACE_fault_nfs.json",
                            flexrpc::ExportChromeTrace(recording));
      return 0;
    });
  }

  for (const Row& row : rows) {
    std::string key = row.scenario->key;
    harness.Report(key + "_virtual_seconds", row.result.virtual_seconds,
                   "s");
    harness.Report(key + "_retransmits",
                   static_cast<double>(row.result.stats.retransmits), "");
    harness.Report(
        key + "_goodput_mbit",
        static_cast<double>(row.result.stats.bytes_read) * 8 /
            row.result.virtual_seconds / 1e6,
        "Mbit/s");
  }
  return harness.Finish();
}
