// Shared helpers for the figure-reproduction benchmarks.
//
// Every bench binary prints a paper-shaped table (the rows/series of the
// figure it reproduces) computed from real runs, and also registers
// google-benchmark cases for the underlying micro-operations so standard
// tooling (--benchmark_filter, JSON output) works too.
//
// BenchHarness is the single integration point for the machine-readable
// side: it owns the flag handling (--smoke, --json_dir=), the hoisted
// best-of-N-repetitions measurement loop every figure used to hand-roll,
// and the flextrace session whose work-counter deltas land in the
// BENCH_<name>.json artifact next to the reported figures.

#ifndef FLEXRPC_BENCH_BENCH_UTIL_H_
#define FLEXRPC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/support/timing.h"
#include "src/support/trace.h"

namespace flexrpc_bench {

// An ASCII bar proportional to value/max (paper figures are bar charts).
inline std::string Bar(double value, double max_value, int width = 40) {
  if (max_value <= 0) {
    return "";
  }
  int n = static_cast<int>(value / max_value * width + 0.5);
  if (n > width) {
    n = width;
  }
  return std::string(static_cast<size_t>(n), '#');
}

inline void PrintRule() {
  std::puts(
      "-----------------------------------------------------------------"
      "-----------");
}

inline void PrintHeader(const char* title) {
  PrintRule();
  std::printf("%s\n", title);
  PrintRule();
}

inline double PercentFaster(double baseline, double improved) {
  return (baseline - improved) / baseline * 100.0;
}

inline double PercentMore(double baseline, double improved) {
  return (improved - baseline) / baseline * 100.0;
}

// One reported figure: a row of the paper-shaped table, in JSON form.
struct BenchResult {
  std::string name;
  double value = 0;
  std::string unit;
};

// Owns a bench binary's lifecycle:
//
//   BenchHarness harness("fig2_nfs", &argc, argv);
//   harness.RunMicrobenchmarks();        // gbench cases (skipped in smoke)
//   ... paper-table phase, harness.calls()/reps() for iteration counts ...
//   harness.Report("client_seconds", s, "s");
//   return harness.Finish();             // writes BENCH_fig2_nfs.json
//
// The flextrace window opens when RunMicrobenchmarks() returns, so the
// counters in the artifact cover exactly the paper-table phase — whose
// iteration counts are fixed, making every counter value deterministic
// and therefore exact-gateable in CI (tools/flextrace). The adaptive
// google-benchmark phase runs with tracing disabled and contributes
// nothing.
//
// Timing vs counting: enabled tracing costs real time on hot paths
// (dozens of relaxed atomic RMWs per call), which would distort the
// reproduced figures. So BestOf() runs its timing repetitions with
// tracing forced OFF and then performs one extra traced repetition
// purely to tally the work; benches with bespoke measurement loops get
// the same split via Untraced() (timing) + Traced() (counting).
//
// Flags (stripped before google-benchmark sees argv):
//   --smoke        deterministic scaled-down run: gbench skipped, reps()
//                  returns 1, calls()/bytes() return their smoke values
//   --json_dir=P   write the artifact into directory P (default: cwd)
//   --record       benches that support it run one extra seeded rep under
//                  a flight-recorder session and write REC_<name>.json
//                  (+ Chrome trace) next to the bench artifact. The
//                  recorded rep runs untraced so the gated flextrace
//                  counter budgets are unaffected.
class BenchHarness {
 public:
  // `name` is the artifact key: BENCH_<name>.json.
  BenchHarness(std::string name, int* argc, char** argv);
  ~BenchHarness();

  BenchHarness(const BenchHarness&) = delete;
  BenchHarness& operator=(const BenchHarness&) = delete;

  bool smoke() const { return smoke_; }
  bool record() const { return record_; }

  // Iteration-count selectors: full fidelity normally, the fixed reduced
  // count under --smoke.
  int calls(int full, int smoke_calls) const {
    return smoke_ ? smoke_calls : full;
  }
  size_t bytes(size_t full, size_t smoke_bytes) const {
    return smoke_ ? smoke_bytes : full;
  }
  int reps(int full) const { return smoke_ ? 1 : full; }

  // Runs the registered google-benchmark cases (unless --smoke), then
  // opens the traced measurement window. Call exactly once.
  void RunMicrobenchmarks();

  // The hoisted repetition loop: runs `measure` `rep_count` times with
  // tracing off and keeps the best value (min when smaller_is_better,
  // else max), then runs one extra traced repetition so the artifact
  // still counts the work.
  double BestOf(int rep_count, bool smaller_is_better,
                const std::function<double()>& measure);

  // Runs `fn` with tracing forced off (timing fidelity) and returns its
  // result; restores the previous state after.
  template <typename Fn>
  auto Untraced(Fn&& fn) {
    bool was = flexrpc::TraceEnabled();
    flexrpc::SetTraceEnabled(false);
    auto result = fn();
    flexrpc::SetTraceEnabled(was);
    return result;
  }

  // Runs `fn` once for its work counters — only when tracing is on (the
  // measurement window is open), since the run is otherwise pointless.
  template <typename Fn>
  void Traced(Fn&& fn) {
    if (flexrpc::TraceEnabled()) {
      fn();
    }
  }

  // Adds one figure to the artifact's results array.
  void Report(std::string name, double value, std::string unit);

  // Writes `contents` to <json_dir>/<filename> (recordings, Chrome
  // traces). Returns false and warns on I/O failure.
  bool WriteArtifact(const std::string& filename,
                     const std::string& contents) const;

  // Writes BENCH_<name>.json and returns the process exit code.
  int Finish();

 private:
  std::string name_;
  std::string json_dir_;
  bool smoke_ = false;
  bool record_ = false;
  bool finished_ = false;
  std::vector<BenchResult> results_;
  std::optional<flexrpc::TraceSession> session_;
  std::optional<flexrpc::Stopwatch> window_timer_;
};

}  // namespace flexrpc_bench

#endif  // FLEXRPC_BENCH_BENCH_UTIL_H_
