// Shared helpers for the figure-reproduction benchmarks.
//
// Every bench binary prints a paper-shaped table (the rows/series of the
// figure it reproduces) computed from real runs, and also registers
// google-benchmark cases for the underlying micro-operations so standard
// tooling (--benchmark_filter, JSON output) works too.

#ifndef FLEXRPC_BENCH_BENCH_UTIL_H_
#define FLEXRPC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace flexrpc_bench {

// An ASCII bar proportional to value/max (paper figures are bar charts).
inline std::string Bar(double value, double max_value, int width = 40) {
  if (max_value <= 0) {
    return "";
  }
  int n = static_cast<int>(value / max_value * width + 0.5);
  if (n > width) {
    n = width;
  }
  return std::string(static_cast<size_t>(n), '#');
}

inline void PrintRule() {
  std::puts(
      "-----------------------------------------------------------------"
      "-----------");
}

inline void PrintHeader(const char* title) {
  PrintRule();
  std::printf("%s\n", title);
  PrintRule();
}

inline double PercentFaster(double baseline, double improved) {
  return (baseline - improved) / baseline * 100.0;
}

inline double PercentMore(double baseline, double improved) {
  return (improved - baseline) / baseline * 100.0;
}

}  // namespace flexrpc_bench

#endif  // FLEXRPC_BENCH_BENCH_UTIL_H_
