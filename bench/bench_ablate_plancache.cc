// Ablation: bind-time invocation-semantics computation vs the paper's
// "dumb" per-call recomputation for same-domain RPC (§4.4: "even with the
// current 'dumb' implementation, we found the additional overhead of this
// computation to be negligible"). Also: bind-time threaded-code assembly
// vs per-call reassembly for the specialized transport (§4.5).

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.h"
#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/ipc/threaded.h"
#include "src/rpc/samedomain.h"
#include "src/support/timing.h"

namespace {

struct SameDomainRig {
  std::unique_ptr<flexrpc::InterfaceFile> idl;
  flexrpc::PresentationSet client;
  flexrpc::PresentationSet server;
  flexrpc::Arena arena{"domain"};
  std::unique_ptr<flexrpc::SameDomainConnection> conn;

  explicit SameDomainRig(flexrpc::SameDomainConnection::PlanMode mode) {
    flexrpc::DiagnosticSink diags;
    idl = flexrpc::ParseCorbaIdl(
        "interface FileIO { void write(in sequence<octet> data); };",
        "t.idl", &diags);
    if (idl == nullptr ||
        !flexrpc::AnalyzeInterfaceFile(idl.get(), &diags) ||
        !flexrpc::ApplyPdlText(*idl, flexrpc::Side::kClient,
                               "FileIO_write(char *[trashable] data);",
                               "c.pdl", &client, &diags) ||
        !flexrpc::ApplyPdl(*idl, flexrpc::Side::kServer, nullptr, &server,
                           &diags)) {
      std::abort();
    }
    auto bound = flexrpc::SameDomainConnection::Bind(
        idl->interfaces[0].ops[0], *client.Find("FileIO")->FindOp("write"),
        *server.Find("FileIO")->FindOp("write"), &arena,
        [](flexrpc::ArgVec*, flexrpc::Arena*) {
          return flexrpc::Status::Ok();
        },
        mode);
    if (!bound.ok()) {
      std::abort();
    }
    conn = std::make_unique<flexrpc::SameDomainConnection>(
        std::move(*bound));
  }

  double NsPerCall(int calls) {
    std::vector<uint8_t> buffer(1024, 1);
    flexrpc::ArgVec args(2);
    for (int i = 0; i < 1000; ++i) {
      args[0].set_ptr(buffer.data());
      args[0].length = 1024;
      (void)conn->Call(&args);
    }
    flexrpc::Stopwatch timer;
    for (int i = 0; i < calls; ++i) {
      args[0].set_ptr(buffer.data());
      args[0].length = 1024;
      (void)conn->Call(&args);
    }
    return static_cast<double>(timer.ElapsedNanos()) / calls;
  }
};

void BM_SameDomainPlan(benchmark::State& state) {
  SameDomainRig rig(
      static_cast<flexrpc::SameDomainConnection::PlanMode>(state.range(0)));
  std::vector<uint8_t> buffer(1024, 1);
  flexrpc::ArgVec args(2);
  for (auto _ : state) {
    args[0].set_ptr(buffer.data());
    args[0].length = 1024;
    benchmark::DoNotOptimize(rig.conn->Call(&args));
  }
}

// Threaded transport: prebuilt combination program vs reassembling the op
// vector on every call (what a non-caching kernel would do).
double ThreadedNs(bool reassemble_per_call, int calls) {
  flexrpc::Kernel kernel;
  flexrpc::DiagnosticSink diags;
  auto idl = flexrpc::ParseCorbaIdl("interface Null { void ping(); };",
                                    "n.idl", &diags);
  if (idl == nullptr || !flexrpc::AnalyzeInterfaceFile(idl.get(), &diags)) {
    std::abort();
  }
  flexrpc::InterfaceSignature sig =
      flexrpc::BuildSignature(idl->interfaces[0]);
  flexrpc::SpecializedTransport transport(&kernel);
  flexrpc::Task* client = kernel.CreateTask("client");
  flexrpc::Task* server = kernel.CreateTask("server");
  flexrpc::PortName pn = kernel.CreatePort(server);
  flexrpc::Port* port = *kernel.ResolvePort(server, pn);
  (void)transport.RegisterServer(port, server, sig,
                                 flexrpc::TrustLevel::kNone, [] {});
  auto conn = transport.BindClient(client, port, sig,
                                   flexrpc::TrustLevel::kNone, false);
  if (!conn.ok()) {
    std::abort();
  }
  flexrpc::Stopwatch timer;
  for (int i = 0; i < calls; ++i) {
    if (reassemble_per_call) {
      auto program = flexrpc::AssembleCombination(
          flexrpc::TrustLevel::kNone, flexrpc::TrustLevel::kNone, false,
          32);
      benchmark::DoNotOptimize(program.data());
    }
    (void)(*conn)->NullCall();
  }
  return static_cast<double>(timer.ElapsedNanos()) / calls;
}

}  // namespace

BENCHMARK(BM_SameDomainPlan)
    ->Arg(static_cast<int>(
        flexrpc::SameDomainConnection::PlanMode::kBindTime))
    ->Arg(static_cast<int>(
        flexrpc::SameDomainConnection::PlanMode::kPerCall))
    ->ArgNames({"per_call"})
    ->Unit(benchmark::kNanosecond);

int main(int argc, char** argv) {
  flexrpc_bench::BenchHarness harness("ablate_plancache", &argc, argv);
  harness.RunMicrobenchmarks();

  using flexrpc_bench::PercentMore;
  using flexrpc_bench::PrintHeader;
  using flexrpc_bench::PrintRule;

  PrintHeader(
      "Ablation: bind-time plans vs per-call recomputation");
  const int kCalls = harness.calls(300000, 300);
  SameDomainRig bind_rig(
      flexrpc::SameDomainConnection::PlanMode::kBindTime);
  SameDomainRig dumb_rig(
      flexrpc::SameDomainConnection::PlanMode::kPerCall);
  double bind_ns =
      harness.BestOf(1, true, [&] { return bind_rig.NsPerCall(kCalls); });
  double dumb_ns =
      harness.BestOf(1, true, [&] { return dumb_rig.NsPerCall(kCalls); });
  std::printf("same-domain semantics: bind-time %8.1f ns   per-call "
              "(\"dumb\") %8.1f ns   (+%.1f%%)\n",
              bind_ns, dumb_ns, PercentMore(bind_ns, dumb_ns));
  std::printf("  (paper: the per-call overhead is \"negligible\")\n");

  double cached =
      harness.BestOf(1, true, [&] { return ThreadedNs(false, kCalls); });
  double rebuilt =
      harness.BestOf(1, true, [&] { return ThreadedNs(true, kCalls); });
  std::printf("threaded transport:    cached    %8.1f ns   reassembled "
              "per call %8.1f ns   (+%.1f%%)\n",
              cached, rebuilt, PercentMore(cached, rebuilt));
  PrintRule();
  harness.Report("samedomain_bindtime_ns", bind_ns, "ns/call");
  harness.Report("samedomain_percall_ns", dumb_ns, "ns/call");
  harness.Report("threaded_cached_ns", cached, "ns/call");
  harness.Report("threaded_reassembled_ns", rebuilt, "ns/call");
  return harness.Finish();
}
