// Figure 6 — "Performance of the Basic Pipe Server".
//
// Streams data writer → pipe server → reader over the streamlined IPC
// path, for 4K and 8K pipe buffers, with the server's read path in the
// default presentation (allocate + copy + stub-free per read) and in the
// [dealloc(never)] presentation (pointer into the circular buffer).
//
// Paper result: +21% (4K) and +24% (8K) throughput from the modified
// presentation.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/pipe.h"
#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/support/timing.h"

namespace {

using flexrpc::PipeServerApp;

struct PipeRig {
  flexrpc::Kernel kernel;
  flexrpc::FastPath fastpath{&kernel};
  std::unique_ptr<flexrpc::InterfaceFile> idl;
  std::unique_ptr<PipeServerApp> app;
  flexrpc::PresentationSet client_pres;
  flexrpc::Task* writer = nullptr;
  flexrpc::Task* reader = nullptr;
  std::unique_ptr<flexrpc::RpcConnection> write_conn;
  std::unique_ptr<flexrpc::RpcConnection> read_conn;
  const flexrpc::MarshalProgram* wprog = nullptr;
  const flexrpc::MarshalProgram* rprog = nullptr;

  PipeRig(PipeServerApp::ReadPresentation pres, size_t capacity) {
    flexrpc::DiagnosticSink diags;
    idl = flexrpc::ParseCorbaIdl(flexrpc::PipeIdlText(), "pipe.idl",
                                 &diags);
    if (idl == nullptr ||
        !flexrpc::AnalyzeInterfaceFile(idl.get(), &diags) ||
        !flexrpc::ApplyPdl(*idl, flexrpc::Side::kClient, nullptr,
                           &client_pres, &diags)) {
      std::fprintf(stderr, "%s", diags.ToString().c_str());
      std::abort();
    }
    app = std::make_unique<PipeServerApp>(&kernel, &fastpath, *idl, pres,
                                          capacity);
    writer = kernel.CreateTask("writer");
    reader = kernel.CreateTask("reader");
    auto wc = flexrpc::RpcConnection::Bind(
        &kernel, &fastpath, writer, app->port(), app->server(),
        idl->interfaces[0], *client_pres.Find("FileIO"));
    auto rc = flexrpc::RpcConnection::Bind(
        &kernel, &fastpath, reader, app->port(), app->server(),
        idl->interfaces[0], *client_pres.Find("FileIO"));
    if (!wc.ok() || !rc.ok()) {
      std::abort();
    }
    write_conn = std::move(*wc);
    read_conn = std::move(*rc);
    wprog = write_conn->ProgramFor("write");
    rprog = read_conn->ProgramFor("read");
  }

  // Pumps `total` bytes through the pipe in `chunk`-sized operations.
  void Pump(size_t total, size_t chunk, std::vector<uint8_t>* payload) {
    size_t written = 0;
    size_t read = 0;
    while (read < total) {
      if (written < total) {
        flexrpc::ArgVec args(wprog->slot_count());
        args[wprog->SlotOf("data")].set_ptr(payload->data());
        args[wprog->SlotOf("data")].length = static_cast<uint32_t>(chunk);
        if (!write_conn->Call("write", &args).ok()) {
          std::abort();
        }
        written += args[wprog->result_slot()].scalar;
      }
      flexrpc::ArgVec args(rprog->slot_count());
      args[rprog->SlotOf("count")].scalar = chunk;
      if (!read_conn->Call("read", &args).ok()) {
        std::abort();
      }
      size_t got = args[rprog->result_slot()].length;
      if (got > 0) {
        reader->space().Free(args[rprog->result_slot()].ptr());
      }
      read += got;
    }
  }
};

double MeasureThroughputMBps(PipeServerApp::ReadPresentation pres,
                             size_t capacity, size_t total) {
  PipeRig rig(pres, capacity);
  std::vector<uint8_t> payload(capacity, 0xA5);
  // Warm up allocator free lists and caches.
  rig.Pump(total / 8, capacity, &payload);
  flexrpc::Stopwatch timer;
  rig.Pump(total, capacity, &payload);
  return static_cast<double>(total) / timer.ElapsedSeconds() / 1e6;
}

void BM_PipeTransfer(benchmark::State& state) {
  auto pres = static_cast<PipeServerApp::ReadPresentation>(state.range(0));
  size_t capacity = static_cast<size_t>(state.range(1));
  PipeRig rig(pres, capacity);
  std::vector<uint8_t> payload(capacity, 0xA5);
  for (auto _ : state) {
    rig.Pump(capacity * 16, capacity, &payload);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * capacity * 16));
}

}  // namespace

BENCHMARK(BM_PipeTransfer)
    ->Args({static_cast<int>(PipeServerApp::ReadPresentation::kDefault),
            4096})
    ->Args({static_cast<int>(PipeServerApp::ReadPresentation::kZeroCopy),
            4096})
    ->Args({static_cast<int>(PipeServerApp::ReadPresentation::kDefault),
            8192})
    ->Args({static_cast<int>(PipeServerApp::ReadPresentation::kZeroCopy),
            8192})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  flexrpc_bench::BenchHarness harness("fig6_pipe", &argc, argv);
  harness.RunMicrobenchmarks();

  using flexrpc_bench::Bar;
  using flexrpc_bench::PercentMore;
  using flexrpc_bench::PrintHeader;
  using flexrpc_bench::PrintRule;

  PrintHeader(
      "Figure 6: pipe server throughput, default vs [dealloc(never)] "
      "server read presentation");
  const size_t kTotal = harness.bytes(64u << 20, 1u << 20);
  const int kReps = harness.reps(3);
  for (size_t capacity : {size_t{4096}, size_t{8192}}) {
    double best_default = harness.BestOf(
        kReps, /*smaller_is_better=*/false, [&] {
          return MeasureThroughputMBps(
              PipeServerApp::ReadPresentation::kDefault, capacity, kTotal);
        });
    double best_zero = harness.BestOf(
        kReps, /*smaller_is_better=*/false, [&] {
          return MeasureThroughputMBps(
              PipeServerApp::ReadPresentation::kZeroCopy, capacity, kTotal);
        });
    double max = best_zero > best_default ? best_zero : best_default;
    std::printf("%zuK pipe, default presentation   %8.1f MB/s  %s\n",
                capacity / 1024, best_default,
                Bar(best_default, max, 30).c_str());
    std::printf("%zuK pipe, [dealloc(never)]       %8.1f MB/s  %s\n",
                capacity / 1024, best_zero,
                Bar(best_zero, max, 30).c_str());
    std::printf("  improvement: %.1f%%   (paper: %s)\n\n",
                PercentMore(best_default, best_zero),
                capacity == 4096 ? "21%" : "24%");
    std::string key = std::to_string(capacity / 1024) + "K";
    harness.Report(key + "_default_MBps", best_default, "MB/s");
    harness.Report(key + "_dealloc_never_MBps", best_zero, "MB/s");
    harness.Report(key + "_improvement_pct",
                   PercentMore(best_default, best_zero), "%");
  }
  PrintRule();
  return harness.Finish();
}
