// Figure 2 — "Performance Effect of User-space Buffer Presentation".
//
// Reads an 8 MB file over a simulated 10 Mbit/s Ethernet with four NFS
// client stub variants:
//   1. hand-coded stubs, conventional presentation (kernel buffer + copyout)
//   2. generated stubs,  conventional presentation
//   3. hand-coded stubs, [special] user-space buffer presentation
//   4. generated stubs,  [special] user-space buffer presentation
// and prints the paper's bar layout: network+server time (identical across
// variants, modeled) followed by client processing time (measured).
//
// Paper result: user-space presentation ≈ 13% less client processing
// (≈ 3% overall); hand-coded ≈ generated.

#include <benchmark/benchmark.h>

#include <cstring>

#include "bench/bench_util.h"
#include "src/apps/nfs.h"
#include "src/marshal/spec.h"
#include "src/marshal/xdr.h"

namespace {

using flexrpc::NfsClient;
using flexrpc::NfsFileServer;

constexpr size_t kFileSize = 8u << 20;
// flexspec A/B chunk size: at 512 B payloads the per-call marshal walk
// dominates client time, which is the regime superinstructions target.
constexpr size_t kSmallChunk = 512;

struct Variant {
  NfsClient::StubKind kind;
  const char* label;
};

const Variant kVariants[] = {
    {NfsClient::StubKind::kHandConventional,
     "conventional, hand-coded     "},
    {NfsClient::StubKind::kGeneratedConventional,
     "conventional, generated      "},
    {NfsClient::StubKind::kHandUserBuffer,
     "user-space buffer, hand-coded"},
    {NfsClient::StubKind::kGeneratedUserBuffer,
     "user-space buffer, generated "},
};

NfsClient::ReadStats RunVariant(NfsClient::StubKind kind,
                                size_t file_size = kFileSize,
                                size_t chunk_bytes = flexrpc::kNfsMaxData) {
  NfsFileServer server(file_size, /*seed=*/1995);
  NfsClient client(&server, flexrpc::LinkModel(),
                   flexrpc::RemoteServerModel());
  auto stats = client.ReadFile(kind, chunk_bytes);
  if (!stats.ok()) {
    std::fprintf(stderr, "NFS read failed: %s\n",
                 stats.status().ToString().c_str());
    std::abort();
  }
  return *stats;
}

// Proves the specialized and interpreted marshal paths put the same bytes
// on the wire before any timing is reported; aborts on divergence.
void CheckWireIdentical() {
  NfsFileServer server(/*file_size=*/4096, /*seed=*/1995);
  NfsClient client(&server, flexrpc::LinkModel(),
                   flexrpc::RemoteServerModel());
  uint8_t fh[flexrpc::kNfsFhSize];
  std::memset(fh, 0xFD, sizeof(fh));
  uint8_t dest[kSmallChunk];
  NfsClient::ChunkArgs chunk{fh, /*offset=*/0,
                             /*count=*/kSmallChunk, dest};
  for (NfsClient::StubKind kind :
       {NfsClient::StubKind::kGeneratedConventional,
        NfsClient::StubKind::kGeneratedUserBuffer}) {
    flexrpc::XdrWriter specialized;
    flexrpc::XdrWriter interpreted;
    flexrpc::SetMarshalSpecializationEnabled(true);
    auto a = client.EncodeRequest(kind, chunk, &specialized);
    flexrpc::SetMarshalSpecializationEnabled(false);
    auto b = client.EncodeRequest(kind, chunk, &interpreted);
    flexrpc::SetMarshalSpecializationEnabled(true);
    if (!a.ok() || !b.ok() ||
        specialized.span().size() != interpreted.span().size() ||
        std::memcmp(specialized.span().data(), interpreted.span().data(),
                    specialized.span().size()) != 0) {
      std::fprintf(stderr,
                   "flexspec wire divergence on stub kind %d\n",
                   static_cast<int>(kind));
      std::abort();
    }
  }
}

void BM_NfsRead(benchmark::State& state) {
  auto kind = static_cast<NfsClient::StubKind>(state.range(0));
  // One iteration reads 1 MB (keeps google-benchmark iterations sane).
  double client_seconds = 0;
  uint64_t bytes = 0;
  for (auto _ : state) {
    auto stats = RunVariant(kind, 1u << 20);
    client_seconds += stats.client_seconds;
    bytes += stats.bytes_read;
  }
  state.counters["client_ms_per_MB"] = benchmark::Counter(
      client_seconds * 1e3 / (static_cast<double>(bytes) / (1 << 20)));
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}

}  // namespace

BENCHMARK(BM_NfsRead)
    ->Arg(static_cast<int>(NfsClient::StubKind::kHandConventional))
    ->Arg(static_cast<int>(NfsClient::StubKind::kGeneratedConventional))
    ->Arg(static_cast<int>(NfsClient::StubKind::kHandUserBuffer))
    ->Arg(static_cast<int>(NfsClient::StubKind::kGeneratedUserBuffer))
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  flexrpc_bench::BenchHarness harness("fig2_nfs", &argc, argv);
  harness.RunMicrobenchmarks();

  using flexrpc_bench::Bar;
  using flexrpc_bench::PercentFaster;
  using flexrpc_bench::PrintHeader;
  using flexrpc_bench::PrintRule;

  PrintHeader(
      "Figure 2: NFS 8MB read — network+server (modeled) + client "
      "processing (measured)");

  const size_t kRunSize = harness.bytes(kFileSize, 256u << 10);
  const int kReps = harness.reps(3);
  struct Row {
    const char* label;
    flexrpc::NfsClient::ReadStats stats;
  };
  std::vector<Row> rows;
  // Repeat each variant a few times (untraced, for timing fidelity) and
  // keep the fastest client time (host noise rejection); then one traced
  // run per variant feeds the artifact's work counters.
  for (const Variant& v : kVariants) {
    flexrpc::NfsClient::ReadStats best;
    for (int rep = 0; rep < kReps; ++rep) {
      auto stats =
          harness.Untraced([&] { return RunVariant(v.kind, kRunSize); });
      if (rep == 0 || stats.client_seconds < best.client_seconds) {
        best = stats;
      }
    }
    harness.Traced([&] { (void)RunVariant(v.kind, kRunSize); });
    rows.push_back(Row{v.label, best});
  }

  double max_total = 0;
  for (const Row& row : rows) {
    double total =
        row.stats.client_seconds + row.stats.network_server_seconds;
    if (total > max_total) {
      max_total = total;
    }
  }
  std::printf("%-30s %10s %10s %10s\n", "", "net+srv(s)", "client(s)",
              "total(s)");
  for (const Row& row : rows) {
    double total =
        row.stats.client_seconds + row.stats.network_server_seconds;
    std::printf("%-30s %10.3f %10.4f %10.3f  %s\n", row.label,
                row.stats.network_server_seconds, row.stats.client_seconds,
                total, Bar(total, max_total, 30).c_str());
  }
  PrintRule();
  double conv_hand = rows[0].stats.client_seconds;
  double conv_gen = rows[1].stats.client_seconds;
  double user_hand = rows[2].stats.client_seconds;
  double user_gen = rows[3].stats.client_seconds;
  std::printf(
      "client-side improvement (generated): %.1f%%   (paper: ~13%%)\n",
      PercentFaster(conv_gen, user_gen));
  std::printf(
      "client-side improvement (hand-coded): %.1f%%\n",
      PercentFaster(conv_hand, user_hand));
  double total_conv =
      conv_gen + rows[1].stats.network_server_seconds;
  double total_user = user_gen + rows[3].stats.network_server_seconds;
  std::printf("overall improvement (generated): %.1f%%   (paper: ~3%%)\n",
              PercentFaster(total_conv, total_user));
  std::printf(
      "hand-coded vs generated (user-space presentation): %.1f%% "
      "difference   (paper: ~0%%)\n",
      (user_gen - user_hand) / user_hand * 100.0);

  // --- flexspec: specialized marshal superinstructions, small chunks ---
  // Same stub, same wire bytes; the only difference is whether the engine
  // dispatches to the registered straight-line code or interprets the
  // plan. Small chunks maximize the per-call marshal share of client time.
  PrintHeader(
      "flexspec: fused marshal superinstructions vs interpreter "
      "(512 B chunks, user-space stub)");
  CheckWireIdentical();
  const size_t kSpecRunSize = harness.bytes(1u << 20, 64u << 10);
  auto time_spec = [&](bool enabled) {
    flexrpc::SetMarshalSpecializationEnabled(enabled);
    flexrpc::NfsClient::ReadStats best;
    for (int rep = 0; rep < kReps; ++rep) {
      auto stats = harness.Untraced([&] {
        return RunVariant(NfsClient::StubKind::kGeneratedUserBuffer,
                          kSpecRunSize, kSmallChunk);
      });
      if (rep == 0 || stats.client_seconds < best.client_seconds) {
        best = stats;
      }
    }
    return best;
  };
  auto spec_off = time_spec(false);
  auto spec_on = time_spec(true);
  // One traced rep with specialization on: the artifact's
  // marshal.spec.hit counter pins the fast path as exercised.
  harness.Traced([&] {
    (void)RunVariant(NfsClient::StubKind::kGeneratedUserBuffer,
                     kSpecRunSize, kSmallChunk);
  });
  std::printf("%-30s %10.4f s client\n", "interpreted plan",
              spec_off.client_seconds);
  std::printf("%-30s %10.4f s client\n", "specialized (flexspec)",
              spec_on.client_seconds);
  std::printf(
      "marshal-path speedup: %.1f%%   (wire bytes verified identical)\n",
      PercentFaster(spec_off.client_seconds, spec_on.client_seconds));
  harness.Report("spec_interp_client_seconds", spec_off.client_seconds,
                 "s");
  harness.Report("spec_fused_client_seconds", spec_on.client_seconds,
                 "s");
  harness.Report(
      "spec_marshal_speedup_pct",
      PercentFaster(spec_off.client_seconds, spec_on.client_seconds),
      "%");

  const char* kResultKeys[] = {"conv_hand", "conv_gen", "user_hand",
                               "user_gen"};
  for (size_t i = 0; i < rows.size(); ++i) {
    harness.Report(std::string(kResultKeys[i]) + "_client_seconds",
                   rows[i].stats.client_seconds, "s");
    harness.Report(std::string(kResultKeys[i]) + "_net_server_seconds",
                   rows[i].stats.network_server_seconds, "s");
  }
  harness.Report("client_improvement_generated_pct",
                 PercentFaster(conv_gen, user_gen), "%");
  harness.Report("overall_improvement_generated_pct",
                 PercentFaster(total_conv, total_user), "%");
  return harness.Finish();
}
