// Fleet saturation sweep — many multiplexed clients against one server.
//
// The other NFS benches drive one client; this one drives an open-loop
// fleet (src/sim/fleet.h) through the connection mux and the modeled
// worker-pool dispatch, sweeping the client count across three decades
// (10 / 100 / 1000) at a fixed per-client arrival rate. Because arrivals
// never wait for completions, offered load scales linearly with the
// fleet while server capacity stays fixed — so the sweep walks straight
// through the saturation knee: p50 barely moves, p99/p999 explode, the
// run queue fills, the shed policy engages, and throughput flattens at
// the pool's capacity.
//
// Each sweep point also replays under the flight recorder and runs
// flexrec attribution, reporting where a completed call's time went
// (queued+wait vs server exec vs wire). Below the knee the wire
// dominates; past it queueing does — the attribution locates the knee
// independently of the latency percentiles. All time is virtual, so
// every figure and every gated counter is deterministic.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/flexrec.h"
#include "src/analysis/flexwatch.h"
#include "src/sim/fleet.h"
#include "src/support/recorder.h"
#include "src/support/timeline.h"

namespace {

using flexrpc::AnalyzeRecording;
using flexrpc::AnalyzeTimeline;
using flexrpc::CallBreakdown;
using flexrpc::FleetConfig;
using flexrpc::FleetResult;
using flexrpc::RecordingAnalysis;
using flexrpc::RunFleet;
using flexrpc::WatchAnalysis;

// Server sized so the knee falls inside the sweep: 8 workers at ~70 us
// per call handle ~115k calls/s; the fleet offers ~333 calls/s per
// client, so 10 and 100 clients ride below capacity and 1000 is past it.
FleetConfig MakeConfig(uint32_t clients, uint32_t calls_per_client,
                       bool heavy_tailed) {
  FleetConfig config;
  config.num_clients = clients;
  config.calls_per_client = calls_per_client;
  config.mean_interarrival_nanos = 3'000'000;  // 3 ms per client
  config.heavy_tailed = heavy_tailed;
  config.seed = 1995;
  config.dispatch.workers = 8;
  config.dispatch.service.per_call_sec = 50e-6;
  config.dispatch.service.per_byte_sec = 20e-9;
  config.dispatch.run_queue_limit = 64;
  config.dispatch.cache_capacity = 64;
  return config;
}

struct SweepPoint {
  const char* label;
  uint32_t clients;
  bool heavy_tailed;
};

const SweepPoint kSweep[] = {
    {"10 clients, poisson  ", 10, false},
    {"100 clients, poisson ", 100, false},
    {"1000 clients, poisson", 1000, false},
    {"1000 clients, pareto ", 1000, true},
};

// Phase attribution over completed calls: fraction of total call time
// spent queued (pre-wire + uncovered wait, which under overload is run-
// queue time), on the server CPU, and on the wire.
struct Attribution {
  double queued_pct = 0;
  double server_pct = 0;
  double wire_pct = 0;
  const char* dominant = "-";
};

Attribution Attribute(const RecordingAnalysis& analysis) {
  uint64_t queued = 0;
  uint64_t server = 0;
  uint64_t wire = 0;
  uint64_t total = 0;
  for (const CallBreakdown& call : analysis.calls) {
    if (!call.complete || call.truncated || call.status_code != 0) {
      continue;
    }
    queued += call.queued_nanos + call.wait_nanos;
    server += call.server_exec_nanos;
    wire += call.req_wire_nanos + call.req_prop_nanos +
            call.reply_wire_nanos + call.reply_prop_nanos;
    total += call.total_nanos;
  }
  Attribution out;
  if (total == 0) {
    return out;
  }
  out.queued_pct = 100.0 * static_cast<double>(queued) / total;
  out.server_pct = 100.0 * static_cast<double>(server) / total;
  out.wire_pct = 100.0 * static_cast<double>(wire) / total;
  out.dominant = "wire";
  if (out.queued_pct >= out.server_pct && out.queued_pct >= out.wire_pct) {
    out.dominant = "queued";
  } else if (out.server_pct >= out.wire_pct) {
    out.dominant = "server";
  }
  return out;
}

// flexrec's view of the saturation onset: bin completed calls by submit
// window and find the first window where queued+wait time exceeds half of
// total call time — the queued-phase flip, the per-call counterpart of
// flexwatch's queue-depth-growth rule.
int64_t QueuedFlipWindow(const RecordingAnalysis& analysis,
                         uint64_t start_nanos, uint64_t tick_nanos,
                         uint64_t ticks) {
  std::vector<uint64_t> queued(ticks, 0);
  std::vector<uint64_t> total(ticks, 0);
  for (const CallBreakdown& call : analysis.calls) {
    if (!call.complete || call.truncated || call.status_code != 0 ||
        call.submit_nanos < start_nanos) {
      continue;
    }
    uint64_t w = (call.submit_nanos - start_nanos) / tick_nanos;
    if (w >= ticks) {
      continue;
    }
    queued[w] += call.queued_nanos + call.wait_nanos;
    total[w] += call.total_nanos;
  }
  for (uint64_t w = 0; w < ticks; ++w) {
    if (total[w] > 0 && 2 * queued[w] > total[w]) {
      return static_cast<int64_t>(w);
    }
  }
  return -1;
}

void BM_Fleet(benchmark::State& state) {
  uint32_t clients = static_cast<uint32_t>(state.range(0));
  uint64_t completed = 0;
  for (auto _ : state) {
    FleetResult result = RunFleet(MakeConfig(clients, 10, false));
    completed += result.completed;
  }
  state.counters["calls"] =
      benchmark::Counter(static_cast<double>(completed));
}

}  // namespace

BENCHMARK(BM_Fleet)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  flexrpc_bench::BenchHarness harness("fleet_nfs", &argc, argv);
  harness.RunMicrobenchmarks();

  using flexrpc_bench::PrintHeader;
  using flexrpc_bench::PrintRule;

  PrintHeader(
      "Open-loop fleet saturation sweep: multiplexed clients vs one "
      "worker pool (virtual time)");

  const uint32_t calls_per_client =
      static_cast<uint32_t>(harness.calls(40, 5));

  struct Row {
    const SweepPoint* point;
    FleetResult result;
    Attribution attribution;
  };
  std::vector<Row> rows;
  for (const SweepPoint& point : kSweep) {
    FleetConfig config =
        MakeConfig(point.clients, calls_per_client, point.heavy_tailed);
    // Timing + figures come from the untraced run; the traced repetition
    // re-counts the identical virtual work for the gated artifact.
    Row row{&point, harness.Untraced([&] { return RunFleet(config); }),
            Attribution{}};
    harness.Traced([&] { (void)RunFleet(config); });
    if (!row.result.status.ok()) {
      std::fprintf(stderr, "fleet run failed: %s\n",
                   row.result.status.ToString().c_str());
      std::abort();
    }
    // Attribution replay under the flight recorder (untraced; recording
    // changes no outcome — same seeds, same virtual timeline).
    row.attribution = harness.Untraced([&] {
      flexrpc::RecorderSession rec_session(1u << 20);
      (void)RunFleet(config);
      return Attribute(AnalyzeRecording(rec_session.Stop()));
    });
    rows.push_back(row);
  }

  std::printf("%-22s %8s %6s %8s %8s %8s %9s %6s  %s\n", "", "done",
              "fail", "p50(ms)", "p99(ms)", "p999(ms)", "thru(c/s)",
              "shed", "dominant");
  for (const Row& row : rows) {
    uint64_t shed =
        row.result.dispatch.shed_accept + row.result.dispatch.shed_run;
    std::printf(
        "%-22s %8llu %6llu %8.2f %8.2f %8.2f %9.0f %6llu  %s %.0f%%\n",
        row.point->label,
        static_cast<unsigned long long>(row.result.completed),
        static_cast<unsigned long long>(row.result.failed),
        static_cast<double>(row.result.p50_nanos) * 1e-6,
        static_cast<double>(row.result.p99_nanos) * 1e-6,
        static_cast<double>(row.result.p999_nanos) * 1e-6,
        row.result.throughput_cps, static_cast<unsigned long long>(shed),
        row.attribution.dominant,
        std::max({row.attribution.queued_pct, row.attribution.server_pct,
                  row.attribution.wire_pct}));
  }
  PrintRule();
  // The knee, located two ways: the first decade where p99 detaches from
  // p50 by >10x, and the first where queued time dominates attribution.
  const char* knee = "not reached";
  for (const Row& row : rows) {
    if (row.point->heavy_tailed) {
      continue;
    }
    if (row.result.p99_nanos > 10 * row.result.p50_nanos ||
        std::string(row.attribution.dominant) == "queued") {
      knee = row.point->label;
      break;
    }
  }
  std::printf("saturation knee at: %s\n", knee);

  // flexwatch cross-check at 1000 clients (the past-knee decade): the
  // timeline's queue-growth onset window versus flexrec's queued-phase
  // flip, computed from one recorded run with a 1 ms sampler tick. Two
  // independent detectors — one watches the server's queue depth, one
  // attributes each call's time — must land on the same neighborhood.
  constexpr uint64_t kTickNanos = 1'000'000;
  FleetConfig watch_config = MakeConfig(1000, calls_per_client, false);
  watch_config.timeline_tick_nanos = kTickNanos;
  flexrpc::Recording watch_recording;
  FleetResult watch_result = harness.Untraced([&] {
    flexrpc::RecorderSession rec_session(1u << 20);
    FleetResult r = RunFleet(watch_config);
    watch_recording = rec_session.Stop();
    return r;
  });
  if (!watch_result.status.ok()) {
    std::fprintf(stderr, "fleet watch run failed: %s\n",
                 watch_result.status.ToString().c_str());
    std::abort();
  }
  WatchAnalysis watch = AnalyzeTimeline(watch_result.timeline);
  int64_t flip = QueuedFlipWindow(AnalyzeRecording(watch_recording),
                                  watch_result.timeline.start_nanos,
                                  kTickNanos, watch_result.timeline.ticks);
  bool agree =
      watch.onset_window >= 0 && flip >= 0 &&
      (watch.onset_window > flip ? watch.onset_window - flip
                                 : flip - watch.onset_window) <= 3;
  std::printf(
      "onset cross-check (1000 clients, 1 ms windows): flexwatch window "
      "%lld, flexrec flip window %lld -> %s\n",
      static_cast<long long>(watch.onset_window),
      static_cast<long long>(flip), agree ? "agree" : "DISAGREE");

  if (harness.record()) {
    // All three artifacts from the same deterministic watch run, so the
    // recording, the Chrome trace, and the timeline describe one virtual
    // history. The counter tracks (ph:"C") put queue depth, in-flight,
    // cwnd, shed, and throughput under the span rows in Perfetto.
    harness.WriteArtifact("REC_fleet_nfs.json",
                          flexrpc::RecordingToJson(watch_recording));
    harness.WriteArtifact(
        "TRACE_fleet_nfs.json",
        flexrpc::ExportChromeTrace(watch_recording,
                                   &watch_result.timeline));
    harness.WriteArtifact(
        "TIMELINE_fleet_nfs.json",
        flexrpc::TimelineToJson(watch_result.timeline));
  }

  for (const Row& row : rows) {
    std::string key =
        "c" + std::to_string(row.point->clients) +
        (row.point->heavy_tailed ? "_pareto" : "_poisson");
    harness.Report(key + "_p50_ms",
                   static_cast<double>(row.result.p50_nanos) * 1e-6, "ms");
    harness.Report(key + "_p99_ms",
                   static_cast<double>(row.result.p99_nanos) * 1e-6, "ms");
    harness.Report(key + "_p999_ms",
                   static_cast<double>(row.result.p999_nanos) * 1e-6,
                   "ms");
    harness.Report(key + "_throughput_cps", row.result.throughput_cps,
                   "calls/s");
    harness.Report(key + "_shed",
                   static_cast<double>(row.result.dispatch.shed_accept +
                                       row.result.dispatch.shed_run),
                   "");
    harness.Report(key + "_queued_pct", row.attribution.queued_pct, "%");
  }
  harness.Report("c1000_onset_window_flexwatch",
                 static_cast<double>(watch.onset_window), "");
  harness.Report("c1000_onset_window_flexrec",
                 static_cast<double>(flip), "");
  return harness.Finish();
}
