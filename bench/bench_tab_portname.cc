// §4.5 (text result) — "Relaxing Mach's unique-name requirement".
//
// Transfers a single port send right from one task to another, with the
// standard unique-name semantics (reverse lookup, insert-or-increment,
// refcount bookkeeping) and with the [nonunique] relaxed semantics (fresh
// name, no reverse lookup).
//
// Paper result: 32.4 µs → 24.7 µs, a 24% reduction. Absolute numbers here
// are orders of magnitude smaller (modern CPU vs 66 MHz PA-RISC); the
// relative gap is the reproduced quantity.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/osim/kernel.h"
#include "src/support/timing.h"

namespace {

// One transfer + release cycle, so the name table returns to its starting
// state (steady-state measurement, no unbounded growth).
double NsPerTransfer(bool nonunique, int calls) {
  flexrpc::Kernel kernel;
  flexrpc::Task* a = kernel.CreateTask("sender");
  flexrpc::Task* b = kernel.CreateTask("receiver");
  flexrpc::PortName recv = kernel.CreatePort(a);
  flexrpc::PortName send = *kernel.MakeSendRight(a, recv, a);

  for (int i = 0; i < 10000; ++i) {
    flexrpc::PortName name = *kernel.TransferRight(a, send, b, nonunique);
    (void)b->names().Release(name);
  }
  flexrpc::Stopwatch timer;
  for (int i = 0; i < calls; ++i) {
    flexrpc::PortName name = *kernel.TransferRight(a, send, b, nonunique);
    (void)b->names().Release(name);
  }
  return static_cast<double>(timer.ElapsedNanos()) / calls;
}

void BM_PortTransfer(benchmark::State& state) {
  bool nonunique = state.range(0) != 0;
  flexrpc::Kernel kernel;
  flexrpc::Task* a = kernel.CreateTask("sender");
  flexrpc::Task* b = kernel.CreateTask("receiver");
  flexrpc::PortName recv = kernel.CreatePort(a);
  flexrpc::PortName send = *kernel.MakeSendRight(a, recv, a);
  for (auto _ : state) {
    flexrpc::PortName name = *kernel.TransferRight(a, send, b, nonunique);
    (void)b->names().Release(name);
  }
}

}  // namespace

BENCHMARK(BM_PortTransfer)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"nonunique"})
    ->Unit(benchmark::kNanosecond);

int main(int argc, char** argv) {
  flexrpc_bench::BenchHarness harness("tab_portname", &argc, argv);
  harness.RunMicrobenchmarks();

  using flexrpc_bench::PercentFaster;
  using flexrpc_bench::PrintHeader;
  using flexrpc_bench::PrintRule;

  PrintHeader(
      "Port right transfer: unique-name semantics vs [nonunique] "
      "(paper §4.5)");
  const int kCalls = harness.calls(2000000, 2000);
  const int kReps = harness.reps(5);
  double unique_ns = harness.BestOf(
      kReps, /*smaller_is_better=*/true,
      [&] { return NsPerTransfer(false, kCalls); });
  double nonunique_ns = harness.BestOf(
      kReps, /*smaller_is_better=*/true,
      [&] { return NsPerTransfer(true, kCalls); });
  std::printf("unique-name transfer:    %8.1f ns   (paper: 32.4 us)\n",
              unique_ns);
  std::printf("[nonunique] transfer:    %8.1f ns   (paper: 24.7 us)\n",
              nonunique_ns);
  PrintRule();
  std::printf("reduction: %.1f%%   (paper: 24%%)\n",
              PercentFaster(unique_ns, nonunique_ns));
  harness.Report("unique_transfer_ns", unique_ns, "ns/transfer");
  harness.Report("nonunique_transfer_ns", nonunique_ns, "ns/transfer");
  harness.Report("reduction_pct", PercentFaster(unique_ns, nonunique_ns),
                 "%");
  return harness.Finish();
}
