// Managed-binding failover — time-to-recover across a kill-point sweep.
//
// A pipelined NFS read runs through the BinderTransport control plane
// (src/rpc/binder.h) over three replicas; the primary's wire is killed at
// swept packet offsets (first packet, a quarter in, halfway, the last
// chunk, and one point past the end of the read). For each kill the bench
// reports total virtual latency, the slowdown versus the clean run, and
// time-to-recover — last suspect transition to the first OK completion
// after cutover, straight from the binder's stats. Everything runs on the
// VirtualClock with fixed seeds, so every figure and every trace counter
// is deterministic and the CI budget gate pins the failover counters
// (rpc.binder.*, rpc.failover.*) exactly.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/nfs.h"
#include "src/net/datagram.h"
#include "src/net/fault.h"
#include "src/net/link.h"
#include "src/net/sunrpc.h"
#include "src/rpc/binder.h"
#include "src/rpc/pipeline.h"
#include "src/support/event_queue.h"
#include "src/support/recorder.h"

namespace {

using flexrpc::BinderPolicy;
using flexrpc::BinderTransport;
using flexrpc::DatagramChannel;
using flexrpc::DatagramHandler;
using flexrpc::EncodeSunRpcCall;
using flexrpc::EventQueue;
using flexrpc::FaultPlan;
using flexrpc::LinkModel;
using flexrpc::NfsClient;
using flexrpc::NfsFileServer;
using flexrpc::PipelinePolicy;
using flexrpc::RemoteServerModel;
using flexrpc::ReplicaGroup;
using flexrpc::SunRpcCall;
using flexrpc::VirtualClock;
using flexrpc::XdrWriter;

constexpr size_t kFileSize = 256u << 10;  // 128 chunks at full fidelity
constexpr size_t kSmokeSize = 64u << 10;
constexpr size_t kChunkBytes = 2048;
constexpr size_t kReplicas = 3;
constexpr uint64_t kNoKill = UINT64_MAX;

struct RunResult {
  NfsClient::ReadStats stats;
  BinderTransport::Stats binder;
  double virtual_seconds = 0;
};

// One managed read over three replicas; replica 0's wire (both
// directions) goes dead starting at packet `kill_packet`.
RunResult RunManaged(uint64_t seed, size_t file_size, uint64_t kill_packet) {
  NfsFileServer client_server(file_size, seed);
  NfsClient client(&client_server, LinkModel(), RemoteServerModel());
  std::vector<std::unique_ptr<NfsFileServer>> replicas;
  for (size_t i = 0; i < kReplicas; ++i) {
    replicas.push_back(std::make_unique<NfsFileServer>(file_size, seed));
  }

  VirtualClock clock;
  EventQueue events(&clock);
  std::vector<std::unique_ptr<DatagramChannel>> channels;
  std::vector<ReplicaGroup::ReplicaSpec> specs;
  for (size_t i = 0; i < kReplicas; ++i) {
    FaultPlan to_server;
    FaultPlan to_client;
    if (i == 0 && kill_packet != kNoKill) {
      to_server.KillFrom(kill_packet);
      to_client.KillFrom(kill_packet);
    }
    channels.push_back(std::make_unique<DatagramChannel>(
        LinkModel(), std::move(to_server), std::move(to_client), &clock));
    specs.push_back({channels.back().get(),
                     NfsFileServer::MakeHandler(replicas[i].get()),
                     RemoteServerModel()});
  }

  PipelinePolicy pipeline;
  pipeline.window = 8;
  pipeline.retry.max_attempts = 12;
  pipeline.retry.deadline_nanos = 8'000'000'000;
  pipeline.retry.jitter_seed = seed + 1;
  ReplicaGroup group(std::move(specs), pipeline, &events);

  BinderPolicy binder_policy;
  binder_policy.failover.suspect_after = 2;
  // A probe is one minimal 1-byte NFS read (cheap, idempotent).
  uint8_t fh[flexrpc::kNfsFhSize];
  std::memset(fh, 0xFD, sizeof(fh));
  binder_policy.make_probe = [&client, &fh](uint32_t xid) {
    XdrWriter w;
    EncodeSunRpcCall(&w, SunRpcCall{xid, flexrpc::kNfsProgram,
                                    flexrpc::kNfsVersion,
                                    flexrpc::kNfsProcRead});
    NfsClient::ChunkArgs chunk{fh, 0, 1, nullptr};
    auto encoded = client.EncodeRequest(
        NfsClient::StubKind::kGeneratedUserBuffer, chunk, &w);
    if (!encoded.ok()) {
      std::fprintf(stderr, "probe encode failed: %s\n",
                   encoded.status().ToString().c_str());
      std::abort();
    }
    flexrpc::ByteSpan span = w.span();
    return std::vector<uint8_t>(span.begin(), span.end());
  };
  BinderTransport binder(&group, std::move(binder_policy));

  auto stats = client.ReadFileManaged(
      NfsClient::StubKind::kGeneratedUserBuffer, &binder, kChunkBytes);
  if (!stats.ok()) {
    std::fprintf(stderr, "managed NFS read failed: %s\n",
                 stats.status().ToString().c_str());
    std::abort();
  }
  RunResult result;
  result.stats = *stats;
  result.binder = binder.stats();
  result.virtual_seconds = static_cast<double>(clock.now_nanos()) * 1e-9;
  return result;
}

// Suspect transition to the first OK completion after cutover, in ms.
double TimeToRecoverMs(const BinderTransport::Stats& binder) {
  if (binder.first_recovery_nanos == 0 || binder.last_suspect_nanos == 0 ||
      binder.first_recovery_nanos < binder.last_suspect_nanos) {
    return 0;
  }
  return static_cast<double>(binder.first_recovery_nanos -
                             binder.last_suspect_nanos) * 1e-6;
}

void BM_ManagedNfsRead(benchmark::State& state) {
  const uint64_t kill = state.range(0) < 0
                            ? kNoKill
                            : static_cast<uint64_t>(state.range(0));
  uint64_t bytes = 0;
  double virtual_seconds = 0;
  for (auto _ : state) {
    auto result = RunManaged(17, kSmokeSize, kill);
    bytes += result.stats.bytes_read;
    virtual_seconds += result.virtual_seconds;
  }
  state.counters["virtual_s_per_MB"] = benchmark::Counter(
      virtual_seconds / (static_cast<double>(bytes) / (1 << 20)));
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}

}  // namespace

BENCHMARK(BM_ManagedNfsRead)->Arg(-1)->Arg(4)->Unit(
    benchmark::kMillisecond);

int main(int argc, char** argv) {
  flexrpc_bench::BenchHarness harness("failover_nfs", &argc, argv);
  harness.RunMicrobenchmarks();

  using flexrpc_bench::Bar;
  using flexrpc_bench::PercentMore;
  using flexrpc_bench::PrintHeader;
  using flexrpc_bench::PrintRule;

  PrintHeader(
      "Managed NFS read: primary killed at swept packet offsets "
      "(virtual time)");

  const size_t kRunSize = harness.bytes(kFileSize, kSmokeSize);
  const uint64_t kChunks = kRunSize / kChunkBytes;

  RunResult clean =
      harness.Untraced([&] { return RunManaged(17, kRunSize, kNoKill); });

  // Kill points by position in the read, so the sweep (and the reported
  // figure keys) stays the same shape at smoke and full sizes.
  struct KillPoint {
    const char* key;
    uint64_t packet;
  };
  const KillPoint kKills[] = {
      {"kill_first", 0},
      {"kill_quarter", kChunks / 4},
      {"kill_half", kChunks / 2},
      {"kill_last", kChunks - 1},
      {"kill_beyond", kChunks * 2},  // past the read: must match clean
  };

  struct Row {
    const KillPoint* kill;
    RunResult result;
  };
  std::vector<Row> rows;
  for (const KillPoint& kill : kKills) {
    rows.push_back({&kill, harness.Untraced([&] {
                      return RunManaged(17, kRunSize, kill.packet);
                    })});
  }
  // One traced repetition (clean + the quarter-point kill) pins the
  // rpc.binder.* / rpc.failover.* counters for the budget gate.
  harness.Traced([&] {
    (void)RunManaged(17, kRunSize, kNoKill);
    (void)RunManaged(17, kRunSize, kChunks / 4);
  });

  double max_virtual = clean.virtual_seconds;
  for (const Row& row : rows) {
    max_virtual = std::max(max_virtual, row.result.virtual_seconds);
  }
  std::printf("%-14s %10s %9s %8s %8s %9s\n", "", "virtual(s)", "slowdown",
              "cutover", "reissue", "ttr(ms)");
  std::printf("%-14s %10.3f %8.1f%% %8llu %8llu %9s  %s\n", "clean",
              clean.virtual_seconds, 0.0,
              static_cast<unsigned long long>(clean.binder.cutovers),
              static_cast<unsigned long long>(clean.binder.reissues), "-",
              Bar(clean.virtual_seconds, max_virtual, 20).c_str());
  for (const Row& row : rows) {
    double ttr = TimeToRecoverMs(row.result.binder);
    char ttr_text[32];
    if (row.result.binder.cutovers > 0) {
      std::snprintf(ttr_text, sizeof(ttr_text), "%9.3f", ttr);
    } else {
      std::snprintf(ttr_text, sizeof(ttr_text), "%9s", "-");
    }
    std::printf("%-14s %10.3f %8.1f%% %8llu %8llu %s  %s\n",
                row.kill->key, row.result.virtual_seconds,
                PercentMore(clean.virtual_seconds,
                            row.result.virtual_seconds),
                static_cast<unsigned long long>(row.result.binder.cutovers),
                static_cast<unsigned long long>(row.result.binder.reissues),
                ttr_text,
                Bar(row.result.virtual_seconds, max_virtual, 20).c_str());
  }
  PrintRule();
  std::printf(
      "kill past the end of the read matches clean exactly: %s\n",
      rows.back().result.virtual_seconds == clean.virtual_seconds
          ? "yes"
          : "NO (regression)");

  if (harness.record()) {
    // One extra rep of an early kill under a flight-recorder session
    // (untraced: the gated counters must not see it). The recording
    // carries the kFailover/kRebind events and per-replica tags, so the
    // archived Chrome trace shows the cutover on its own replica tracks.
    harness.Untraced([&] {
      flexrpc::RecorderSession rec_session;
      (void)RunManaged(17, kRunSize, 2);
      flexrpc::Recording recording = rec_session.Stop();
      harness.WriteArtifact("REC_failover_nfs.json",
                            flexrpc::RecordingToJson(recording));
      harness.WriteArtifact("TRACE_failover_nfs.json",
                            flexrpc::ExportChromeTrace(recording));
      return 0;
    });
  }

  harness.Report("clean_virtual_seconds", clean.virtual_seconds, "s");
  for (const Row& row : rows) {
    std::string key = row.kill->key;
    harness.Report(key + "_virtual_seconds", row.result.virtual_seconds,
                   "s");
    harness.Report(key + "_slowdown_pct",
                   PercentMore(clean.virtual_seconds,
                               row.result.virtual_seconds),
                   "%");
    harness.Report(key + "_ttr_ms", TimeToRecoverMs(row.result.binder),
                   "ms");
  }
  return harness.Finish();
}
