// Figure 10 — "Performance of Varying Mutability Semantics".
//
// A same-domain RPC with a single 1 KB `in` parameter, across four
// scenario groups (does the server modify the buffer? does the client
// need its contents preserved?) and three RPC systems:
//   * fixed copy semantics      — the stub always copies for the server;
//   * fixed borrow semantics    — the stub never copies, so a server that
//     wants to modify must copy manually (glue);
//   * flexible presentation     — [trashable]/[preserved] attributes let
//     the stub copy only when *neither* side relaxed its requirement.
//
// Paper result: flexible presentation always does the minimum copying and
// never needs hand-written glue.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/rpc/samedomain.h"
#include "src/support/timing.h"

namespace {

constexpr size_t kBufSize = 1024;

enum class System { kFixedCopy, kFixedBorrow, kFlexible };

struct Scenario {
  bool server_modifies;
  bool client_cares;
  const char* label;
};

const Scenario kScenarios[] = {
    {false, true, "server reads,    client needs data "},
    {false, false, "server reads,    client discards   "},
    {true, true, "server modifies, client needs data "},
    {true, false, "server modifies, client discards   "},
};

struct Rig {
  std::unique_ptr<flexrpc::InterfaceFile> idl;
  flexrpc::PresentationSet client;
  flexrpc::PresentationSet server;
  flexrpc::Arena arena{"domain"};
  std::unique_ptr<flexrpc::SameDomainConnection> conn;
  uint64_t glue_copies = 0;

  Rig(System system, const Scenario& scenario) {
    flexrpc::DiagnosticSink diags;
    idl = flexrpc::ParseCorbaIdl(
        "interface FileIO { void write(in sequence<octet> data); };",
        "t.idl", &diags);
    if (idl == nullptr ||
        !flexrpc::AnalyzeInterfaceFile(idl.get(), &diags)) {
      std::abort();
    }
    std::string client_pdl;
    std::string server_pdl;
    switch (system) {
      case System::kFixedCopy:
        break;  // defaults: copy semantics
      case System::kFixedBorrow:
        // The system-wide rule: servers may never modify in parameters.
        server_pdl = "FileIO_write(char *[preserved] data);";
        break;
      case System::kFlexible:
        if (!scenario.client_cares) {
          client_pdl = "FileIO_write(char *[trashable] data);";
        }
        if (!scenario.server_modifies) {
          server_pdl = "FileIO_write(char *[preserved] data);";
        }
        break;
    }
    auto apply = [&](flexrpc::Side side, const std::string& pdl,
                     flexrpc::PresentationSet* out) {
      flexrpc::DiagnosticSink d;
      bool ok = pdl.empty()
                    ? flexrpc::ApplyPdl(*idl, side, nullptr, out, &d)
                    : flexrpc::ApplyPdlText(*idl, side, pdl, "p.pdl", out,
                                            &d);
      if (!ok) {
        std::fprintf(stderr, "%s", d.ToString().c_str());
        std::abort();
      }
    };
    apply(flexrpc::Side::kClient, client_pdl, &client);
    apply(flexrpc::Side::kServer, server_pdl, &server);

    bool needs_glue =
        system == System::kFixedBorrow && scenario.server_modifies;
    bool modifies = scenario.server_modifies;
    flexrpc::Arena* domain = &arena;
    uint64_t* glue = &glue_copies;
    auto work = [needs_glue, modifies, domain, glue](
                    flexrpc::ArgVec* args, flexrpc::Arena*) {
      auto* data = static_cast<uint8_t*>((*args)[0].ptr());
      uint32_t len = (*args)[0].length;
      if (modifies) {
        if (needs_glue) {
          // Hand-written glue the fixed-borrow system forces on the
          // programmer: copy, then modify the copy.
          auto* copy = static_cast<uint8_t*>(domain->AllocateBlock(len));
          std::memcpy(copy, data, len);
          ++*glue;
          for (uint32_t i = 0; i < len; i += 64) {
            copy[i] ^= 0xFF;
          }
          benchmark::DoNotOptimize(copy);
          domain->FreeBlock(copy);
        } else {
          // Modify in place (legal: either the buffer is the stub's copy
          // or the client declared it trashable).
          for (uint32_t i = 0; i < len; i += 64) {
            data[i] ^= 0xFF;
          }
        }
      } else {
        uint64_t sum = 0;
        for (uint32_t i = 0; i < len; i += 64) {
          sum += data[i];
        }
        benchmark::DoNotOptimize(sum);
      }
      return flexrpc::Status::Ok();
    };
    auto bound = flexrpc::SameDomainConnection::Bind(
        idl->interfaces[0].ops[0], *client.Find("FileIO")->FindOp("write"),
        *server.Find("FileIO")->FindOp("write"), &arena, work);
    if (!bound.ok()) {
      std::abort();
    }
    conn = std::make_unique<flexrpc::SameDomainConnection>(
        std::move(*bound));
  }

  double NsPerCall(int calls) {
    std::vector<uint8_t> buffer(kBufSize, 0x42);
    flexrpc::ArgVec args(2);
    // Warm up.
    for (int i = 0; i < 1000; ++i) {
      args[0].set_ptr(buffer.data());
      args[0].length = kBufSize;
      (void)conn->Call(&args);
    }
    flexrpc::Stopwatch timer;
    for (int i = 0; i < calls; ++i) {
      args[0].set_ptr(buffer.data());
      args[0].length = kBufSize;
      (void)conn->Call(&args);
    }
    return static_cast<double>(timer.ElapsedNanos()) / calls;
  }
};

void BM_SameDomainIn(benchmark::State& state) {
  System system = static_cast<System>(state.range(0));
  const Scenario& scenario = kScenarios[state.range(1)];
  Rig rig(system, scenario);
  std::vector<uint8_t> buffer(kBufSize, 0x42);
  flexrpc::ArgVec args(2);
  for (auto _ : state) {
    args[0].set_ptr(buffer.data());
    args[0].length = kBufSize;
    benchmark::DoNotOptimize(rig.conn->Call(&args));
  }
  state.counters["stub_copies"] =
      benchmark::Counter(static_cast<double>(rig.conn->copies()));
}

}  // namespace

BENCHMARK(BM_SameDomainIn)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2, 3}})
    ->Unit(benchmark::kNanosecond);

int main(int argc, char** argv) {
  flexrpc_bench::BenchHarness harness("fig10_mutability", &argc, argv);
  harness.RunMicrobenchmarks();

  using flexrpc_bench::Bar;
  using flexrpc_bench::PrintHeader;
  using flexrpc_bench::PrintRule;

  PrintHeader(
      "Figure 10: same-domain RPC, 1KB in parameter — copy vs borrow vs "
      "flexible");
  const int kCalls = harness.calls(200000, 200);
  const int kReps = harness.reps(3);
  const char* kSystemKeys[3] = {"fixed_copy", "fixed_borrow", "flexible"};
  std::printf("%-36s %12s %12s %12s\n", "scenario (ns/call)", "fixed-copy",
              "fixed-borrow", "flexible");
  double table[4][3];
  for (int s = 0; s < 4; ++s) {
    for (int sys = 0; sys < 3; ++sys) {
      Rig rig(static_cast<System>(sys), kScenarios[s]);
      double best = harness.BestOf(kReps, /*smaller_is_better=*/true,
                                   [&] { return rig.NsPerCall(kCalls); });
      table[s][sys] = best;
      harness.Report(std::string("scenario") + std::to_string(s) + "_" +
                         kSystemKeys[sys] + "_ns",
                     best, "ns/call");
    }
  }
  for (int s = 0; s < 4; ++s) {
    std::printf("%-36s %12.1f %12.1f %12.1f\n", kScenarios[s].label,
                table[s][0], table[s][1], table[s][2]);
  }
  PrintRule();
  std::printf(
      "expected shape (paper): fixed-copy is uniformly slow; fixed-borrow "
      "is fast\nexcept when the server modifies (manual copy); flexible "
      "copies only in the\n'server modifies + client needs data' cell and "
      "never needs glue.\n");
  return harness.Finish();
}
