#!/bin/sh
# Runs clang-tidy (config: .clang-tidy) over the static-analysis and
# code-generation layers — the flexcheck/flexspec stages where a subtle
# bug silently mis-verifies or mis-emits specialized marshal code. Skips
# gracefully when clang-tidy is not installed so tools/ci.sh works in
# minimal containers (mirrors tools/format.sh).
#
#   tools/tidy.sh                 # lint src/analysis + src/codegen
#   BUILD_DIR=build-asan tools/tidy.sh
set -eu

cd "$(dirname "$0")/.."

CLANG_TIDY=${CLANG_TIDY:-clang-tidy}
if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  echo "tidy.sh: $CLANG_TIDY not found; skipping" >&2
  exit 0
fi

BUILD_DIR=${BUILD_DIR:-build}
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  # CMAKE_EXPORT_COMPILE_COMMANDS is on in CMakeLists.txt; a configure is
  # enough to produce the database.
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi

FILES=$(git ls-files 'src/analysis/*.cc' 'src/codegen/*.cc')
# shellcheck disable=SC2086
"$CLANG_TIDY" -p "$BUILD_DIR" --quiet $FILES
echo "tidy.sh: all files clean"
