#!/bin/sh
# Formats (or with --check, verifies) every tracked C++ source with the
# repository's .clang-format. Skips gracefully when clang-format is not
# installed so tools/ci.sh works in minimal containers.
set -eu

cd "$(dirname "$0")/.."

MODE=format
if [ "${1:-}" = "--check" ]; then
  MODE=check
fi

CLANG_FORMAT=${CLANG_FORMAT:-clang-format}
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "format.sh: $CLANG_FORMAT not found; skipping" >&2
  exit 0
fi

FILES=$(git ls-files '*.cc' '*.h' '*.cpp')
if [ "$MODE" = check ]; then
  # shellcheck disable=SC2086
  "$CLANG_FORMAT" --dry-run --Werror $FILES
  echo "format.sh: all files clean"
else
  # shellcheck disable=SC2086
  "$CLANG_FORMAT" -i $FILES
fi
