#!/bin/sh
# Runs every bench binary and collects the BENCH_<name>.json artifacts.
#
#   tools/bench.sh                    # full-fidelity run -> bench-results/
#   tools/bench.sh --smoke            # deterministic scaled-down run
#   tools/bench.sh --smoke --check    # + gate against bench/budgets/smoke.json
#   tools/bench.sh --smoke --record   # + flight-recorder artifacts
#                                     #   (REC_*.json + TRACE_*.json Chrome
#                                     #   traces + TIMELINE_*.json flexwatch
#                                     #   timelines, from the benches that
#                                     #   support recording)
#   OUT=dir BUILD=dir tools/bench.sh  # override output / build directories
#
# Full runs take minutes (they reproduce the paper figures at full
# iteration counts); --smoke runs in seconds and is what CI gates on.
# bench_fault_nfs runs entirely on the virtual clock (lossy-wire NFS
# read), so its figures and counters are exact in both modes.
set -eu

cd "$(dirname "$0")/.."
BUILD=${BUILD:-build}
OUT=${OUT:-bench-results}
SMOKE=
CHECK=
RECORD=

for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=--smoke ;;
    --check) CHECK=1 ;;
    --record) RECORD=--record ;;
    *)
      echo "usage: tools/bench.sh [--smoke] [--check] [--record]" >&2
      exit 1
      ;;
  esac
done

if [ -n "$CHECK" ] && [ -z "$SMOKE" ]; then
  echo "bench.sh: --check requires --smoke (budgets pin smoke runs)" >&2
  exit 1
fi

if [ ! -d "$BUILD/bench" ]; then
  echo "bench.sh: $BUILD/bench not found — build first (cmake -B $BUILD -S . && cmake --build $BUILD)" >&2
  exit 1
fi

mkdir -p "$OUT"
for bin in "$BUILD"/bench/bench_*; do
  [ -x "$bin" ] || continue
  echo "== $(basename "$bin") =="
  # Explicit propagation (not just set -e): name the failing binary and
  # exit with its status so CI logs point at the culprit immediately.
  "$bin" $SMOKE $RECORD "--json_dir=$OUT" || {
    status=$?
    echo "bench.sh: $(basename "$bin") exited $status" >&2
    exit "$status"
  }
done

echo "== artifacts =="
ls -l "$OUT"/BENCH_*.json
if [ -n "$RECORD" ]; then
  ls -l "$OUT"/REC_*.json "$OUT"/TRACE_*.json "$OUT"/TIMELINE_*.json
fi

if [ -n "$CHECK" ]; then
  echo "== budget gate =="
  "$BUILD"/tools/flextrace/flextrace_check \
    --budgets=bench/budgets/smoke.json "--dir=$OUT"
  # The timeline gate needs the TIMELINE_*.json artifacts, which only the
  # --record benches emit.
  if [ -n "$RECORD" ]; then
    echo "== timeline gate =="
    "$BUILD"/tools/flextrace/flextrace_check --timeline \
      --budgets=bench/budgets/timeline.json "--dir=$OUT"
  fi
fi
