// flexwatch_report — render a flexwatch timeline as a saturation report.
//
// Usage:
//   flexwatch_report <timeline.json> [--limit=N]
//   flexwatch_report --diff <a.json> <b.json> [--limit=N]
//
// Reads a flexrpc-timeline-v1 artifact (TIMELINE_<bench>.json, emitted by
// the benches under --record --json_dir=...) and prints the per-window
// p50/p99 ribbon, the detected saturation-onset window (first sustained
// queue-growth window), and the per-connection / per-worker / per-replica
// latency attribution. --diff compares two timelines run over run:
// onset agreement, counter-total deltas, and the shared-prefix p99 ribbon
// delta. --limit caps window rows (default 64, 0 = all).
//
// Exit code 0 on success, 1 on unreadable or malformed input.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/flexwatch.h"
#include "src/support/timeline.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: flexwatch_report <timeline.json> [--limit=N]\n"
               "       flexwatch_report --diff <a.json> <b.json> "
               "[--limit=N]\n");
  return 1;
}

bool LoadTimeline(const char* path, flexrpc::Timeline* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "flexwatch_report: cannot open %s\n", path);
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto timeline = flexrpc::ParseTimeline(buffer.str());
  if (!timeline.ok()) {
    std::fprintf(stderr, "flexwatch_report: %s: %s\n", path,
                 timeline.status().ToString().c_str());
    return false;
  }
  *out = std::move(*timeline);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool diff = false;
  size_t limit = 64;
  std::vector<const char*> paths;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--diff") == 0) {
      diff = true;
    } else if (std::strncmp(arg, "--limit=", 8) == 0) {
      limit = static_cast<size_t>(std::strtoull(arg + 8, nullptr, 10));
      if (limit == 0) {
        limit = static_cast<size_t>(-1);
      }
    } else if (arg[0] != '-') {
      paths.push_back(arg);
    } else {
      return Usage();
    }
  }

  if (diff) {
    if (paths.size() != 2) {
      return Usage();
    }
    flexrpc::Timeline a;
    flexrpc::Timeline b;
    if (!LoadTimeline(paths[0], &a) || !LoadTimeline(paths[1], &b)) {
      return 1;
    }
    std::string report = flexrpc::DiffTimelines(a, b, limit);
    std::fputs(report.c_str(), stdout);
    return 0;
  }

  if (paths.size() != 1) {
    return Usage();
  }
  flexrpc::Timeline timeline;
  if (!LoadTimeline(paths[0], &timeline)) {
    return 1;
  }
  flexrpc::WatchAnalysis analysis = flexrpc::AnalyzeTimeline(timeline);
  std::string report = flexrpc::RenderWatchReport(analysis, limit);
  std::fputs(report.c_str(), stdout);
  return 0;
}
