// flextrace_check — the CI budget gate over BENCH_<name>.json artifacts.
//
// The flextrace counters are deterministic for the fixed-iteration bench
// workloads (the simulation performs the same operations every run), so
// the budgets pin exact values: any drift in copies, allocations, traps,
// or bytes-on-wire is a regression (or an intentional change that must
// regenerate the budgets with --update).
//
//   flextrace_check --budgets=bench/budgets/smoke.json --dir=OUT
//   flextrace_check --budgets=bench/budgets/smoke.json --dir=OUT --update
//
// --timeline switches the gate to flexwatch TIMELINE_<name>.json
// artifacts: tick counts, series counts, sketch-cell counts, and total
// sketch samples are exact for a seeded run, so the timeline budgets pin
// them the same way (same --update regeneration, same unified-diff
// failure report):
//
//   flextrace_check --timeline --budgets=bench/budgets/timeline.json \
//       --dir=OUT [--update]
//
// Exit code 0 = all benches within budget; 1 = violation or usage error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/json.h"
#include "src/support/status.h"
#include "src/support/strings.h"
#include "src/support/timeline.h"

namespace flexrpc {
namespace {

// The gated subset of the counter catalog: the work the paper's
// evaluation argues about. Timing *values* are deliberately absent —
// they are host-dependent — but histogram observation counts are gated
// separately below.
constexpr const char* kGatedCounters[] = {
    "kernel.traps",
    "kernel.port_transfers.unique",
    "kernel.port_transfers.nonunique",
    "mem.copies",
    "mem.copy_bytes",
    "arena.bump_allocs",
    "arena.block_allocs",
    "fbuf.allocs",
    "fbuf.bytes_by_reference",
    "fbuf.bytes_copied",
    "ipc.bytes_copied",
    "ipc.sigcache.hits",
    "ipc.sigcache.misses",
    "rpc.client.calls",
    "rpc.server.dispatches",
    "marshal.bytes_marshaled",
    "marshal.bytes_unmarshaled",
    // flexspec dispatch: hit/miss split is deterministic for a fixed
    // workload — a drift means a specialization appeared, vanished, or
    // stopped matching its plan key.
    "marshal.spec.hit",
    "marshal.spec.miss",
    "net.packets",
    "net.bytes_on_wire",
    // Lossy-wire substrate: injected faults and their recovery are
    // deterministic (seeded FaultPlan + virtual clock), so CI pins them
    // exactly — a drift here means the fault schedule itself changed.
    "net.datagrams_sent",
    "net.datagrams_delivered",
    "net.fault.drops",
    "net.fault.dups",
    "net.fault.reorders",
    "net.fault.corrupts",
    "net.checksum_failures",
    "net.frame_copies",
    "rpc.retry.retransmits",
    "rpc.dupcache.hits",
    "rpc.dupcache.misses",
    "rpc.pipeline.calls",
    "rpc.pipeline.retransmits",
    "rpc.pipeline.stale_replies",
    "rpc.pipeline.out_of_order",
    "rpc.pipeline.window_stalls",
    "rpc.pipeline.events",
    // Adaptive transport: estimator samples, Karn exclusions, RTO clamps,
    // and AIMD window moves are exact for the seeded bench workloads — a
    // drift means the control loop's trajectory changed.
    "rpc.rtt.samples",
    "rpc.rtt.karn_skips",
    "rpc.rtt.clamps",
    "rpc.cwnd.increases",
    "rpc.cwnd.decreases",
    // Managed-binding control plane: calls routed, live rebinds, probes,
    // and health transitions are exact for the scripted kill schedules —
    // a drift means the failover trajectory changed.
    "rpc.binder.calls",
    "rpc.binder.reissues",
    "rpc.binder.probes",
    "rpc.binder.cutovers",
    "rpc.failover.suspects",
    "rpc.failover.reinstates",
    // Fleet stack (connection mux + worker-pool dispatch). Exact for a
    // fixed seed: arrivals, faults, sheds, and retransmits all replay.
    "rpc.mux.conns_opened",
    "rpc.mux.calls",
    "rpc.mux.retransmits",
    "rpc.mux.stale_replies",
    "rpc.mux.flow_stalls",
    "rpc.dispatch.accepts",
    "rpc.dispatch.executions",
    "rpc.dispatch.shed",
    "rpc.dupcache.evictions",
    "rpc.dupcache.evicted_reexecs",
};

// Histogram *counts* are gated too: the number of observations (marshals,
// dispatches, messages, wire transfers) is exact for a fixed workload even
// where the observed values are host wall time. Budget keys carry a
// ".count" suffix on the histogram name; an artifact that elides a
// zero-observation histogram reads as 0.
constexpr const char* kGatedHistogramCounts[] = {
    "rpc.marshal_nanos.count",
    "rpc.unmarshal_nanos.count",
    "rpc.dispatch_nanos.count",
    "ipc.message_bytes.count",
    "net.transfer_virtual_nanos.count",
    "rpc.dispatch.queue_depth.count",
};

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError(StrFormat("cannot open %s", path.c_str()));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

Result<JsonValue> LoadJson(const std::string& path) {
  FLEXRPC_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  auto parsed = ParseJson(text);
  if (!parsed.ok()) {
    return InvalidArgumentError(StrFormat(
        "%s: %s", path.c_str(), parsed.status().message().c_str()));
  }
  return parsed;
}

uint64_t CounterOf(const JsonValue& artifact, const char* name) {
  const JsonValue* trace = artifact.Find("trace");
  const JsonValue* counters =
      trace != nullptr ? trace->Find("counters") : nullptr;
  const JsonValue* v = counters != nullptr ? counters->Find(name) : nullptr;
  if (v == nullptr || !v->IsNumber()) {
    return 0;
  }
  return static_cast<uint64_t>(v->number);
}

uint64_t HistogramCountOf(const JsonValue& artifact,
                          const std::string& histogram) {
  const JsonValue* trace = artifact.Find("trace");
  const JsonValue* histograms =
      trace != nullptr ? trace->Find("histograms") : nullptr;
  const JsonValue* h = histograms != nullptr
                           ? histograms->Find(histogram.c_str())
                           : nullptr;
  // Zero-observation histograms are elided from the artifact entirely.
  const JsonValue* v = h != nullptr ? h->Find("count") : nullptr;
  if (v == nullptr || !v->IsNumber()) {
    return 0;
  }
  return static_cast<uint64_t>(v->number);
}

// Resolves a budget key to its observed value: "<histogram>.count" keys
// read trace.histograms, everything else reads trace.counters.
uint64_t GatedValueOf(const JsonValue& artifact, const std::string& key) {
  constexpr std::string_view kCountSuffix = ".count";
  if (key.size() > kCountSuffix.size() &&
      key.compare(key.size() - kCountSuffix.size(), kCountSuffix.size(),
                  kCountSuffix) == 0) {
    return HistogramCountOf(
        artifact, key.substr(0, key.size() - kCountSuffix.size()));
  }
  return CounterOf(artifact, key.c_str());
}

struct Options {
  std::string argv0 = "flextrace_check";
  std::string budgets_path;
  std::string dir = ".";
  bool update = false;
  bool timeline = false;  // gate TIMELINE_*.json instead of BENCH_*.json
};

// One out-of-budget counter, kept structured so the failure report can
// render a unified diff of the budget file against observed reality.
struct Drift {
  std::string bench;
  std::string key;
  uint64_t want_lo = 0;
  uint64_t want_hi = 0;
  uint64_t got = 0;
};

int Fail(const char* why) {
  std::fprintf(stderr, "flextrace_check: %s\n", why);
  return 1;
}

// Validates one artifact's shape and (unless updating) its counters
// against the bench's budget entry. Appends human-readable violations.
void CheckBench(const std::string& bench, const JsonValue& artifact,
                bool want_smoke, const JsonValue* budget,
                std::vector<std::string>* violations,
                std::vector<Drift>* drifts) {
  const JsonValue* schema = artifact.Find("schema");
  if (schema == nullptr || schema->string != "flexrpc-bench-v1") {
    violations->push_back(bench + ": missing/unknown schema");
    return;
  }
  const JsonValue* smoke = artifact.Find("smoke");
  if (smoke == nullptr || smoke->kind != JsonValue::Kind::kBool) {
    violations->push_back(bench + ": missing smoke flag");
    return;
  }
  // Comparing a full run against smoke budgets (or vice versa) would
  // "fail" on every counter for the wrong reason — refuse outright.
  if (smoke->boolean != want_smoke) {
    violations->push_back(StrFormat(
        "%s: artifact is a %s run but budgets are for %s runs",
        bench.c_str(), smoke->boolean ? "smoke" : "full",
        want_smoke ? "smoke" : "full"));
    return;
  }
  const JsonValue* results = artifact.Find("results");
  if (results == nullptr || results->kind != JsonValue::Kind::kArray ||
      results->array.empty()) {
    violations->push_back(bench + ": empty results array");
  }
  if (budget == nullptr) {
    return;
  }
  for (const auto& [name, want] : budget->object) {
    uint64_t got = GatedValueOf(artifact, name);
    uint64_t lo;
    uint64_t hi;
    if (want.IsNumber()) {
      lo = hi = static_cast<uint64_t>(want.number);
    } else if (want.kind == JsonValue::Kind::kArray &&
               want.array.size() == 2 && want.array[0].IsNumber() &&
               want.array[1].IsNumber()) {
      lo = static_cast<uint64_t>(want.array[0].number);
      hi = static_cast<uint64_t>(want.array[1].number);
    } else {
      violations->push_back(bench + ": malformed budget for " + name);
      continue;
    }
    if (got < lo || got > hi) {
      violations->push_back(StrFormat(
          "%s: %s = %llu outside budget [%llu, %llu]", bench.c_str(),
          name.c_str(), static_cast<unsigned long long>(got),
          static_cast<unsigned long long>(lo),
          static_cast<unsigned long long>(hi)));
      drifts->push_back(Drift{bench, name, lo, hi, got});
    }
  }
}

// --- the --timeline gate -------------------------------------------------

// The gated shape of a flexwatch timeline, all exact for a seeded run:
// drift in tick count means the run's virtual span changed; drift in the
// sketch-cell or sample counts means observations moved across windows,
// dimensions, or series.
struct TimelineShape {
  uint64_t tick_nanos = 0;
  uint64_t ticks = 0;
  uint64_t counter_series = 0;
  uint64_t gauge_series = 0;
  uint64_t sketch_cells = 0;    // distinct (series, dim, window) sketches
  uint64_t sketch_samples = 0;  // summed sketch counts
};

constexpr const char* kTimelineKeys[] = {
    "tick_nanos",   "ticks",        "counter_series",
    "gauge_series", "sketch_cells", "sketch_samples",
};

uint64_t TimelineKeyOf(const TimelineShape& shape, const std::string& key) {
  if (key == "tick_nanos") return shape.tick_nanos;
  if (key == "ticks") return shape.ticks;
  if (key == "counter_series") return shape.counter_series;
  if (key == "gauge_series") return shape.gauge_series;
  if (key == "sketch_cells") return shape.sketch_cells;
  if (key == "sketch_samples") return shape.sketch_samples;
  return 0;
}

Result<TimelineShape> LoadTimelineShape(const std::string& path) {
  FLEXRPC_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  auto timeline = ParseTimeline(text);
  if (!timeline.ok()) {
    return InvalidArgumentError(StrFormat(
        "%s: %s", path.c_str(), timeline.status().message().c_str()));
  }
  TimelineShape shape;
  shape.tick_nanos = timeline->tick_nanos;
  shape.ticks = timeline->ticks;
  shape.counter_series = timeline->counters.size();
  shape.gauge_series = timeline->gauges.size();
  shape.sketch_cells = timeline->sketches.size();
  for (const auto& [key, sketch] : timeline->sketches) {
    (void)key;
    shape.sketch_samples += sketch.count();
  }
  return shape;
}

int RunTimeline(const Options& opts) {
  auto budgets = LoadJson(opts.budgets_path);
  if (!budgets.ok()) {
    return Fail(budgets.status().ToString().c_str());
  }
  const JsonValue* schema = budgets->Find("schema");
  if (schema == nullptr ||
      schema->string != "flexrpc-timeline-budgets-v1") {
    return Fail("timeline budgets file has missing/unknown schema");
  }
  const JsonValue* benches = budgets->Find("benches");
  if (benches == nullptr || !benches->IsObject()) {
    return Fail("timeline budgets file has no benches object");
  }

  if (opts.update) {
    JsonWriter w;
    w.BeginObject();
    w.Key("schema").String("flexrpc-timeline-budgets-v1");
    w.Key("benches").BeginObject();
    for (const auto& [bench, unused] : benches->object) {
      (void)unused;
      auto shape =
          LoadTimelineShape(opts.dir + "/TIMELINE_" + bench + ".json");
      if (!shape.ok()) {
        return Fail(shape.status().ToString().c_str());
      }
      w.Key(bench).BeginObject();
      for (const char* key : kTimelineKeys) {
        w.Key(key).UInt(TimelineKeyOf(*shape, key));
      }
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
    std::FILE* f = std::fopen(opts.budgets_path.c_str(), "w");
    if (f == nullptr) {
      return Fail("cannot write timeline budgets file");
    }
    std::fwrite(w.str().data(), 1, w.str().size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("flextrace_check: rewrote %s (%zu timelines)\n",
                opts.budgets_path.c_str(), benches->object.size());
    return 0;
  }

  std::vector<std::string> violations;
  std::vector<Drift> drifts;
  for (const auto& [bench, budget] : benches->object) {
    auto shape =
        LoadTimelineShape(opts.dir + "/TIMELINE_" + bench + ".json");
    if (!shape.ok()) {
      violations.push_back(shape.status().ToString());
      continue;
    }
    if (!budget.IsObject()) {
      violations.push_back(bench + ": malformed timeline budget entry");
      continue;
    }
    for (const auto& [key, want] : budget.object) {
      if (!want.IsNumber()) {
        violations.push_back(bench + ": malformed timeline budget for " +
                             key);
        continue;
      }
      uint64_t lo = static_cast<uint64_t>(want.number);
      uint64_t got = TimelineKeyOf(*shape, key);
      if (got != lo) {
        violations.push_back(StrFormat(
            "%s: %s = %llu, budget pins %llu", bench.c_str(), key.c_str(),
            static_cast<unsigned long long>(got),
            static_cast<unsigned long long>(lo)));
        drifts.push_back(Drift{bench, key, lo, lo, got});
      }
    }
  }
  if (!violations.empty()) {
    for (const std::string& v : violations) {
      std::fprintf(stderr, "flextrace_check: FAIL %s\n", v.c_str());
    }
    if (!drifts.empty()) {
      std::fprintf(stderr, "\n--- %s (budget)\n+++ %s (observed)\n",
                   opts.budgets_path.c_str(), opts.dir.c_str());
      std::string current_bench;
      for (const Drift& d : drifts) {
        if (d.bench != current_bench) {
          current_bench = d.bench;
          std::fprintf(stderr, "@@ timeline %s @@\n", d.bench.c_str());
        }
        std::fprintf(stderr, "-  \"%s\": %llu\n", d.key.c_str(),
                     static_cast<unsigned long long>(d.want_lo));
        std::fprintf(stderr, "+  \"%s\": %llu\n", d.key.c_str(),
                     static_cast<unsigned long long>(d.got));
      }
    }
    std::fprintf(stderr,
                 "\nflextrace_check: %zu violation(s). If the change is "
                 "intentional, regenerate the timeline budgets with:\n"
                 "  %s --timeline --budgets=%s --dir=%s --update\n",
                 violations.size(), opts.argv0.c_str(),
                 opts.budgets_path.c_str(), opts.dir.c_str());
    return 1;
  }
  std::printf("flextrace_check: %zu timeline(s) within budget\n",
              benches->object.size());
  return 0;
}

int Run(const Options& opts) {
  auto budgets = LoadJson(opts.budgets_path);
  if (!budgets.ok()) {
    return Fail(budgets.status().ToString().c_str());
  }
  const JsonValue* schema = budgets->Find("schema");
  if (schema == nullptr ||
      schema->string != "flexrpc-bench-budgets-v1") {
    return Fail("budgets file has missing/unknown schema");
  }
  const JsonValue* mode = budgets->Find("mode");
  if (mode == nullptr ||
      (mode->string != "smoke" && mode->string != "full")) {
    return Fail("budgets file mode must be \"smoke\" or \"full\"");
  }
  bool want_smoke = mode->string == "smoke";
  const JsonValue* benches = budgets->Find("benches");
  if (benches == nullptr || !benches->IsObject()) {
    return Fail("budgets file has no benches object");
  }

  if (opts.update) {
    // Regenerate: pin every gated counter to its observed value.
    JsonWriter w;
    w.BeginObject();
    w.Key("schema").String("flexrpc-bench-budgets-v1");
    w.Key("mode").String(mode->string);
    w.Key("benches").BeginObject();
    for (const auto& [bench, unused] : benches->object) {
      (void)unused;
      auto artifact =
          LoadJson(opts.dir + "/BENCH_" + bench + ".json");
      if (!artifact.ok()) {
        return Fail(artifact.status().ToString().c_str());
      }
      w.Key(bench).BeginObject();
      for (const char* name : kGatedCounters) {
        w.Key(name).UInt(CounterOf(*artifact, name));
      }
      for (const char* name : kGatedHistogramCounts) {
        w.Key(name).UInt(GatedValueOf(*artifact, name));
      }
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
    std::FILE* f = std::fopen(opts.budgets_path.c_str(), "w");
    if (f == nullptr) {
      return Fail("cannot write budgets file");
    }
    std::fwrite(w.str().data(), 1, w.str().size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("flextrace_check: rewrote %s (%zu benches)\n",
                opts.budgets_path.c_str(), benches->object.size());
    return 0;
  }

  std::vector<std::string> violations;
  std::vector<Drift> drifts;
  for (const auto& [bench, budget] : benches->object) {
    auto artifact = LoadJson(opts.dir + "/BENCH_" + bench + ".json");
    if (!artifact.ok()) {
      violations.push_back(artifact.status().ToString());
      continue;
    }
    CheckBench(bench, *artifact, want_smoke, &budget, &violations, &drifts);
  }
  if (!violations.empty()) {
    for (const std::string& v : violations) {
      std::fprintf(stderr, "flextrace_check: FAIL %s\n", v.c_str());
    }
    if (!drifts.empty()) {
      // A unified diff of the budget file against observed reality, one
      // hunk per bench — paste-able into a review to see exactly what the
      // work change moved.
      std::fprintf(stderr, "\n--- %s (budget)\n+++ %s (observed)\n",
                   opts.budgets_path.c_str(), opts.dir.c_str());
      std::string current_bench;
      for (const Drift& d : drifts) {
        if (d.bench != current_bench) {
          current_bench = d.bench;
          std::fprintf(stderr, "@@ bench %s @@\n", d.bench.c_str());
        }
        if (d.want_lo == d.want_hi) {
          std::fprintf(stderr, "-  \"%s\": %llu\n", d.key.c_str(),
                       static_cast<unsigned long long>(d.want_lo));
        } else {
          std::fprintf(stderr, "-  \"%s\": [%llu, %llu]\n", d.key.c_str(),
                       static_cast<unsigned long long>(d.want_lo),
                       static_cast<unsigned long long>(d.want_hi));
        }
        std::fprintf(stderr, "+  \"%s\": %llu\n", d.key.c_str(),
                     static_cast<unsigned long long>(d.got));
      }
    }
    std::fprintf(stderr,
                 "\nflextrace_check: %zu violation(s). If the work change "
                 "is intentional, regenerate the budgets with:\n"
                 "  %s --budgets=%s --dir=%s --update\n",
                 violations.size(), opts.argv0.c_str(),
                 opts.budgets_path.c_str(), opts.dir.c_str());
    return 1;
  }
  std::printf("flextrace_check: %zu bench(es) within budget\n",
              benches->object.size());
  return 0;
}

}  // namespace
}  // namespace flexrpc

int main(int argc, char** argv) {
  flexrpc::Options opts;
  if (argc > 0 && argv[0] != nullptr && argv[0][0] != '\0') {
    opts.argv0 = argv[0];
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--budgets=", 10) == 0) {
      opts.budgets_path = arg + 10;
    } else if (std::strncmp(arg, "--dir=", 6) == 0) {
      opts.dir = arg + 6;
    } else if (std::strcmp(arg, "--update") == 0) {
      opts.update = true;
    } else if (std::strcmp(arg, "--timeline") == 0) {
      opts.timeline = true;
    } else {
      std::fprintf(stderr,
                   "usage: flextrace_check [--timeline] --budgets=FILE "
                   "[--dir=DIR] [--update]\n");
      return 1;
    }
  }
  if (opts.budgets_path.empty()) {
    return flexrpc::Fail("--budgets= is required");
  }
  return opts.timeline ? flexrpc::RunTimeline(opts) : flexrpc::Run(opts);
}
