// flexrec_report — render a flight-recorder recording as a latency report.
//
// Usage:
//   flexrec_report <recording.json> [--limit=N] [--chrome=<trace.json>]
//
// Reads a flexrpc-rec-v1 recording (REC_<bench>.json, emitted by the
// benches under --record --json_dir=...) and prints the deterministic
// attribution report: aggregate phase budget, retransmit cause
// classification, window-occupancy timeline, and a per-call table.
// --limit caps the per-call rows (default 32, 0 = all); --chrome
// additionally writes the Chrome trace_event export for
// Perfetto / chrome://tracing.
//
// Exit code 0 on success, 1 on unreadable or malformed input. CI runs
// this on one smoke recording as a smoke check (tools/ci.sh).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/analysis/flexrec.h"
#include "src/support/recorder.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: flexrec_report <recording.json> [--limit=N] "
               "[--chrome=<trace.json>]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* input_path = nullptr;
  size_t limit = 32;
  const char* chrome_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--limit=", 8) == 0) {
      limit = static_cast<size_t>(std::strtoull(arg + 8, nullptr, 10));
      if (limit == 0) {
        limit = static_cast<size_t>(-1);
      }
    } else if (std::strncmp(arg, "--chrome=", 9) == 0) {
      chrome_path = arg + 9;
    } else if (input_path == nullptr && arg[0] != '-') {
      input_path = arg;
    } else {
      return Usage();
    }
  }
  if (input_path == nullptr) {
    return Usage();
  }

  std::ifstream in(input_path);
  if (!in) {
    std::fprintf(stderr, "flexrec_report: cannot open %s\n", input_path);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  auto recording = flexrpc::ParseRecording(buffer.str());
  if (!recording.ok()) {
    std::fprintf(stderr, "flexrec_report: %s: %s\n", input_path,
                 recording.status().ToString().c_str());
    return 1;
  }

  flexrpc::RecordingAnalysis analysis =
      flexrpc::AnalyzeRecording(*recording);
  std::string report = flexrpc::RenderReport(analysis, limit);
  std::fputs(report.c_str(), stdout);

  if (chrome_path != nullptr) {
    std::ofstream out(chrome_path);
    if (!out) {
      std::fprintf(stderr, "flexrec_report: cannot write %s\n",
                   chrome_path);
      return 1;
    }
    out << flexrpc::ExportChromeTrace(*recording);
    std::fprintf(stderr, "wrote Chrome trace to %s\n", chrome_path);
  }
  return 0;
}
