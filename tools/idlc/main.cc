// idlc — the flexrpc stub compiler driver.
//
// Reads an interface definition (CORBA IDL or Sun RPC language), optionally
// applies per-side PDL files, and emits C++ stubs:
//
//   idlc --idl pipe.idl [--sun]
//        [--client-pdl client.pdl] [--server-pdl server.pdl]
//        [--namespace ns] [--out-dir DIR] [--basename NAME]
//        [--dump-signature] [--check] [--lint] [--advise] [--Werror]
//        [--specialize] [--profile PATH]... [--spec-top K]
//
// Outputs <basename>.flexgen.h and <basename>.flexgen.cc in --out-dir.
// --check parses, validates, and runs the flexcheck marshal-plan verifier
// over every compiled (operation, side) program, plus the stage-3 flexspec
// equivalence prover over every compiled superinstruction stream; --lint
// runs the flexcheck presentation lint (FLEXnnn diagnostics), --advise
// adds its §4 advisor notes; --Werror makes warnings fail the run;
// --dump-signature prints the canonical wire signature (hex) of every
// interface.
//
// --specialize additionally emits <basename>.flexspec.h/.cc — fused
// straight-line marshal superinstructions, each proven wire-equivalent to
// the interpreted plan before emission (divergence blocks the run).
// --profile feeds BENCH_*.json / REC_*.json artifacts (files or
// directories, repeatable) so only the hottest --spec-top plans are
// specialized; without a profile every supported plan is.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/flexcheck.h"
#include "src/analysis/flexspec_profile.h"
#include "src/analysis/plan_verifier.h"
#include "src/analysis/spec_verifier.h"
#include "src/codegen/cpp_gen.h"
#include "src/codegen/spec_gen.h"
#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/idl/sunrpc_parser.h"
#include "src/marshal/engine.h"
#include "src/pdl/apply.h"
#include "src/sig/signature.h"
#include "src/support/strings.h"

namespace {

struct Options {
  std::string idl_path;
  bool sun = false;
  std::string client_pdl_path;
  std::string server_pdl_path;
  std::string ns = "flexgen";
  std::string out_dir = ".";
  std::string basename;
  bool dump_signature = false;
  bool check_only = false;
  bool lint = false;
  bool advise = false;
  bool werror = false;
  bool specialize = false;
  std::vector<std::string> profile_paths;
  size_t spec_top = 8;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --idl FILE [--sun] [--client-pdl FILE] [--server-pdl "
      "FILE]\n            [--namespace NS] [--out-dir DIR] [--basename "
      "NAME] [--dump-signature]\n            [--check] [--lint] [--advise] "
      "[--Werror]\n            [--specialize] [--profile PATH]... "
      "[--spec-top K]\n",
      argv0);
  return 2;
}

bool ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

std::string BasenameOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = name.find_last_of('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--idl") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      opt.idl_path = v;
    } else if (arg == "--sun") {
      opt.sun = true;
    } else if (arg == "--client-pdl") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      opt.client_pdl_path = v;
    } else if (arg == "--server-pdl") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      opt.server_pdl_path = v;
    } else if (arg == "--namespace") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      opt.ns = v;
    } else if (arg == "--out-dir") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      opt.out_dir = v;
    } else if (arg == "--basename") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      opt.basename = v;
    } else if (arg == "--dump-signature") {
      opt.dump_signature = true;
    } else if (arg == "--check") {
      opt.check_only = true;
    } else if (arg == "--lint") {
      opt.lint = true;
    } else if (arg == "--advise") {
      opt.advise = true;
    } else if (arg == "--Werror") {
      opt.werror = true;
    } else if (arg == "--specialize") {
      opt.specialize = true;
    } else if (arg == "--profile") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      opt.profile_paths.emplace_back(v);
    } else if (arg == "--spec-top") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      char* end = nullptr;
      opt.spec_top = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || opt.spec_top == 0) {
        std::fprintf(stderr, "idlc: bad --spec-top value '%s'\n", v);
        return Usage(argv[0]);
      }
    } else {
      std::fprintf(stderr, "idlc: unknown option '%s'\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (opt.idl_path.empty()) {
    return Usage(argv[0]);
  }
  if (opt.basename.empty()) {
    opt.basename = BasenameOf(opt.idl_path);
  }

  std::string idl_text;
  if (!ReadFileToString(opt.idl_path, &idl_text)) {
    std::fprintf(stderr, "idlc: cannot read '%s'\n", opt.idl_path.c_str());
    return 1;
  }

  flexrpc::DiagnosticSink diags;
  auto idl = opt.sun
                 ? flexrpc::ParseSunRpc(idl_text, opt.idl_path, &diags)
                 : flexrpc::ParseCorbaIdl(idl_text, opt.idl_path, &diags);
  if (idl == nullptr || !flexrpc::AnalyzeInterfaceFile(idl.get(), &diags)) {
    std::fputs(diags.ToString().c_str(), stderr);
    return 1;
  }

  auto apply_side = [&](flexrpc::Side side, const std::string& pdl_path,
                        flexrpc::PresentationSet* out) {
    if (pdl_path.empty()) {
      return flexrpc::ApplyPdl(*idl, side, nullptr, out, &diags);
    }
    std::string pdl_text;
    if (!ReadFileToString(pdl_path, &pdl_text)) {
      std::fprintf(stderr, "idlc: cannot read '%s'\n", pdl_path.c_str());
      return false;
    }
    return flexrpc::ApplyPdlText(*idl, side, pdl_text, pdl_path, out,
                                 &diags);
  };

  flexrpc::PresentationSet client_pres;
  flexrpc::PresentationSet server_pres;
  if (!apply_side(flexrpc::Side::kClient, opt.client_pdl_path,
                  &client_pres) ||
      !apply_side(flexrpc::Side::kServer, opt.server_pdl_path,
                  &server_pres)) {
    std::fputs(diags.ToString().c_str(), stderr);
    return 1;
  }

  if (opt.dump_signature) {
    for (const flexrpc::InterfaceDecl& itf : idl->interfaces) {
      flexrpc::InterfaceSignature sig = flexrpc::BuildSignature(itf);
      flexrpc::ByteWriter w;
      flexrpc::EncodeSignature(sig, &w);
      std::printf("%s (hash %016llx): ", itf.name.c_str(),
                  static_cast<unsigned long long>(
                      flexrpc::SignatureHash(sig)));
      for (uint8_t byte : w.span()) {
        std::printf("%02x", byte);
      }
      std::printf("\n");
    }
  }
  if (opt.lint) {
    flexrpc::LintOptions lint_opts;
    lint_opts.advisors = opt.advise;
    flexrpc::LintPresentationSet(*idl, client_pres, &diags, lint_opts);
    flexrpc::LintPresentationSet(*idl, server_pres, &diags, lint_opts);
  }
  if (opt.check_only) {
    // Audit every (operation, side) marshal program the runtime would
    // compile at bind time — flexcheck stage 2 — then prove every
    // compilable superinstruction stream wire-equivalent to it (stage 3,
    // FLEX2xx). Streams outside the specializable subset stay on the
    // interpreter; --check only reports them under --specialize.
    for (const flexrpc::InterfaceDecl& itf : idl->interfaces) {
      for (const flexrpc::PresentationSet* set :
           {&client_pres, &server_pres}) {
        const flexrpc::InterfacePresentation* pres = set->Find(itf.name);
        for (const flexrpc::OperationDecl& op : itf.ops) {
          const flexrpc::OpPresentation* op_pres = pres->FindOp(op.name);
          flexrpc::MarshalProgram program =
              flexrpc::MarshalProgram::Build(op, *op_pres);
          flexrpc::VerifyProgram(program, opt.idl_path, &diags);
          flexrpc::SpecPlan spec_plan =
              flexrpc::CompileSpecPlan(op, *op_pres);
          flexrpc::VerifySpecPlan(op, *op_pres, spec_plan, opt.idl_path,
                                  &diags);
        }
      }
    }
  }

  // Print everything collected — warnings and notes included, so lint
  // output is visible (and machine-checkable) even on success.
  if (!diags.diagnostics().empty()) {
    std::fputs(diags.ToString().c_str(), stderr);
  }
  if (diags.HasErrors() || (opt.werror && diags.HasWarnings())) {
    return 1;
  }
  if (opt.check_only) {
    std::fprintf(stderr, "idlc: %s OK (%zu interface(s))\n",
                 opt.idl_path.c_str(), idl->interfaces.size());
    return 0;
  }

  flexrpc::CppGenOptions gen_options;
  gen_options.ns = opt.ns;
  gen_options.header_name = opt.basename + ".flexgen.h";
  auto generated =
      flexrpc::GenerateCpp(*idl, client_pres, server_pres, gen_options);
  if (!generated.ok()) {
    std::fprintf(stderr, "idlc: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }

  std::string header_path =
      opt.out_dir + "/" + opt.basename + ".flexgen.h";
  std::string source_path =
      opt.out_dir + "/" + opt.basename + ".flexgen.cc";
  std::ofstream header(header_path, std::ios::binary);
  std::ofstream source(source_path, std::ios::binary);
  if (!header || !source) {
    std::fprintf(stderr, "idlc: cannot write outputs under '%s'\n",
                 opt.out_dir.c_str());
    return 1;
  }
  header << generated->header;
  source << generated->source;
  std::fprintf(stderr, "idlc: wrote %s and %s\n", header_path.c_str(),
               source_path.c_str());

  if (!opt.specialize) {
    return 0;
  }

  flexrpc::MarshalProfile profile;
  for (const std::string& path : opt.profile_paths) {
    flexrpc::Status status = flexrpc::LoadProfilePath(path, &profile);
    if (!status.ok()) {
      std::fprintf(stderr, "idlc: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  flexrpc::FinalizeProfile(&profile);

  flexrpc::SpecGenOptions spec_options;
  spec_options.ns = opt.ns;
  spec_options.header_name = opt.basename + ".flexspec.h";
  spec_options.top_k = opt.spec_top;
  spec_options.profile =
      opt.profile_paths.empty() ? nullptr : &profile;
  flexrpc::SpecGenStats spec_stats;
  flexrpc::DiagnosticSink spec_diags;  // fresh: earlier ones are printed
  auto spec_generated = flexrpc::GenerateSpecializations(
      *idl, client_pres, server_pres, spec_options, opt.idl_path,
      &spec_diags, &spec_stats);
  // Everything the prover said, warnings (FLEX205) included.
  if (!spec_diags.diagnostics().empty()) {
    std::fputs(spec_diags.ToString().c_str(), stderr);
  }
  for (const std::string& note : spec_stats.notes) {
    std::fprintf(stderr, "idlc: specialize: %s\n", note.c_str());
  }
  if (!spec_generated.ok()) {
    std::fprintf(stderr, "idlc: %s\n",
                 spec_generated.status().ToString().c_str());
    return 1;
  }
  std::string spec_header_path =
      opt.out_dir + "/" + opt.basename + ".flexspec.h";
  std::string spec_source_path =
      opt.out_dir + "/" + opt.basename + ".flexspec.cc";
  std::ofstream spec_header(spec_header_path, std::ios::binary);
  std::ofstream spec_source(spec_source_path, std::ios::binary);
  if (!spec_header || !spec_source) {
    std::fprintf(stderr, "idlc: cannot write outputs under '%s'\n",
                 opt.out_dir.c_str());
    return 1;
  }
  spec_header << spec_generated->header;
  spec_source << spec_generated->source;
  std::fprintf(stderr,
               "idlc: wrote %s and %s (%zu plan(s), %zu stream(s))\n",
               spec_header_path.c_str(), spec_source_path.c_str(),
               spec_stats.plans_emitted, spec_stats.streams_emitted);
  return 0;
}
