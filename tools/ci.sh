#!/bin/sh
# CI entry point: style check, plain build + tests, then an ASan+UBSan
# build + tests. Also lints the example IDL/PDL with flexcheck.
#
#   tools/ci.sh                          # everything
#   SKIP_SAN=1 tools/ci.sh               # plain build only (fast local loop)
#   FLEXRPC_SANITIZE=thread tools/ci.sh  # + a TSan build + tests (flextrace
#                                        #   counters are relaxed atomics;
#                                        #   this suite keeps them honest)
#   JOBS=4 tools/ci.sh                   # cap build/test parallelism
set -eu

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 2)}

echo "== format check =="
sh tools/format.sh --check

echo "== clang-tidy (analysis + codegen) =="
sh tools/tidy.sh

run_suite() {
  build_dir=$1
  shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j "$JOBS"
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
  # The full run above includes the fault-injection soak (label: fault)
  # and the replica-death failover sweep (label: failover); repeat them as
  # their own step so lossy-wire and failover regressions surface with a
  # dedicated line in every configuration, sanitizers included.
  echo "== fault-injection + failover + fleet soak ($build_dir) =="
  ctest --test-dir "$build_dir" -L "fault|failover|fleet" \
    --output-on-failure -j "$JOBS"
}

echo "== plain build + tests =="
run_suite build

echo "== flexcheck on the examples =="
./build/tools/idlc/idlc --idl examples/idl/syslog.idl \
  --client-pdl examples/idl/syslog_client.pdl \
  --lint --Werror --check

echo "== flexrec smoke check =="
# One recorded smoke rep of the pipelined bench, then render its report —
# proves the recorder, the serializer, and the attribution pipeline work
# end to end on every CI run.
rec_dir=build/flexrec-smoke
mkdir -p "$rec_dir"
./build/bench/bench_pipeline_nfs --smoke --record "--json_dir=$rec_dir" \
  > /dev/null
./build/tools/flextrace/flexrec_report "$rec_dir/REC_pipeline_nfs.json" \
  --limit=8

if [ "${SKIP_SAN:-}" != 1 ]; then
  echo "== ASan+UBSan build + tests =="
  run_suite build-asan -DFLEXRPC_SANITIZE=address,undefined
fi

if [ "${FLEXRPC_SANITIZE:-}" = thread ]; then
  echo "== TSan build + tests =="
  run_suite build-tsan -DFLEXRPC_SANITIZE=thread
fi

echo "ci.sh: all green"
